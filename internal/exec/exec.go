// Package exec is the physical executor: it runs optimized logical plans on
// the simulated shared-nothing cluster, materializing a partitioned relation
// per operator (stage-at-a-time, like the Hadoop-based SimSQL the paper
// built on). Joins and aggregations shuffle through the cluster — paying
// serialization and network accounting — and aggregation is two-phase:
// partition-local pre-aggregation, a shuffle of partial states, then a
// merge, which is what makes SUM over vectors and matrix blocks scale.
package exec

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"relalg/internal/cluster"
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// Relation is a materialized, partitioned intermediate result.
type Relation struct {
	Schema plan.Schema
	Parts  [][]value.Row
	// HashKeys, when non-nil, records the String() forms of the expressions
	// this relation is hash-partitioned by, letting downstream joins and
	// aggregations skip redundant shuffles (the paper's "R was already
	// partitioned on the join key" optimization).
	HashKeys []string
	// Single marks a relation gathered onto one partition.
	Single bool
}

// Rows gathers all partitions (convenience for result consumption).
func (r *Relation) Rows() []value.Row {
	var n int
	for _, p := range r.Parts {
		n += len(p)
	}
	out := make([]value.Row, 0, n)
	for _, p := range r.Parts {
		out = append(out, p...)
	}
	return out
}

// NumRows counts rows across partitions.
func (r *Relation) NumRows() int {
	n := 0
	for _, p := range r.Parts {
		n += len(p)
	}
	return n
}

// TableSource resolves table names to stored partitions.
type TableSource interface {
	TableParts(name string) ([][]value.Row, error)
}

// Timings accumulates wall-clock time per operator label; Figure 4's
// breakdown of join vs aggregation cost reads from here.
type Timings struct {
	mu sync.Mutex
	m  map[string]time.Duration
}

// NewTimings returns an empty timing table.
func NewTimings() *Timings { return &Timings{m: map[string]time.Duration{}} }

// Track starts a stopwatch for label and returns the function that stops it
// and charges the elapsed time. It is the only place the executor reads the
// wall clock: operator timings are measurement output (Figure 4's
// breakdown), never simulation state, so determinism of results is
// unaffected.
func (t *Timings) Track(label string) func() {
	start := time.Now() //lint:ignore nodeterminism wall-clock here is the measured output (operator timings), not simulation state
	return func() { t.Add(label, time.Since(start)) }
}

// Add charges d to label.
func (t *Timings) Add(label string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.m[label] += d
	t.mu.Unlock()
}

// Get returns the accumulated time for label.
func (t *Timings) Get(label string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[label]
}

// Labels returns all labels sorted.
func (t *Timings) Labels() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.m))
	for l := range t.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Total sums all labels.
func (t *Timings) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var d time.Duration
	for _, v := range t.m {
		d += v
	}
	return d
}

// Context carries everything an execution needs.
type Context struct {
	Cluster *cluster.Cluster
	Tables  TableSource
	Timings *Timings
	// DisableAggFusion turns off the fused SUM(outer_product)/
	// SUM(matrix_multiply) accumulation, reverting to one materialized
	// result object per input row — the behaviour of the paper's 2017
	// SimSQL, which the benchmark harness emulates (ablation A4).
	DisableAggFusion bool
	// DisablePipelineFusion turns off the fused scan→filter→project
	// per-partition pipeline, reverting to one materialized relation per
	// operator (stage-at-a-time, the seed executor's behaviour). Used by the
	// benchmark harness and the allocation-regression tests as the baseline.
	DisablePipelineFusion bool
	// Spill carries the per-query memory governor and temp-file layer. When
	// nil or budget-less, every operator runs strictly in memory (the seed
	// behaviour); when enabled, the hash join, hash aggregation, and sort go
	// out-of-core under pressure instead of growing without bound.
	Spill *spill.Manager
	// KernelWorkers is this query's goroutine budget for parallel linalg
	// kernels. 0 falls back to the deprecated process-wide default; the
	// serving layer sets an explicit lease so concurrent queries share the
	// machine instead of each assuming exclusive use.
	KernelWorkers int
	// BatchSize, when > 0, switches filter, project, the fused pipeline,
	// hash-join build/probe, and partition-local aggregation to the
	// vectorized batch executor: rows are processed in windows of this many
	// as per-column arrays with selection vectors. 0 keeps the row-at-a-time
	// executor. Results, ordering, charges, and spill behaviour are
	// bit-identical either way (except LIMIT over a fused pipeline, which
	// stops producing at the limit instead of materializing first).
	BatchSize int
	// Adaptive, when non-nil with Factor > 1, enables mid-query
	// re-optimization of join regions whose observed input cardinalities
	// diverge from their estimates; see Adaptive.
	Adaptive *Adaptive

	// bound caches relations materialized during adaptive re-optimization,
	// keyed by the plan node that produced them; plan.Bound leaves resolve
	// here. adaptiveHandled marks join regions already checked, so a query
	// re-plans each region at most once.
	bound           map[plan.Node]*Relation
	adaptiveHandled map[plan.Node]bool
}

// EvalCtx returns the expression-evaluation context for this query. The
// context is immutable, so one value may be shared by every goroutine of the
// query; callers capture it once per operator rather than per row.
func (c *Context) EvalCtx() *plan.EvalCtx {
	if c.KernelWorkers == 0 {
		return nil
	}
	return &plan.EvalCtx{KernelWorkers: c.KernelWorkers}
}

// spillEnabled reports whether a memory budget governs this query.
func (c *Context) spillEnabled() bool { return c.Spill.Enabled() }

// opErr tags err with the operator that tripped it, so budget exhaustion and
// spill-layer failures are diagnosable; %w keeps errors.Is matching (the
// failure tests pin both properties).
func opErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", op, err)
}

// taskObs wires the cluster task runner's retry events into the query's
// timing table: the deterministic backoff waits that precede re-executions
// accumulate under the "retry" label.
func taskObs(ctx *Context) cluster.TaskObserver {
	t := ctx.Timings
	return cluster.TaskObserver{RetryWait: func(d time.Duration) { t.Add("retry", d) }}
}

// rowFootprint is the governed in-memory cost of holding one row in an
// operator's working set: the codec's encoded payload plus slice and header
// overhead.
func rowFootprint(r value.Row) int64 { return int64(r.SizeBytes()) + 48 }

// valsFootprint is the governed cost of a slice of evaluated key values.
func valsFootprint(vals []value.Value) int64 {
	n := int64(32)
	for _, v := range vals {
		n += int64(v.SizeBytes())
	}
	return n
}

// Run executes a plan and returns the materialized result.
func Run(ctx *Context, n plan.Node) (*Relation, error) {
	// A subtree materialized during adaptive re-optimization never re-runs.
	if rel, ok := ctx.bound[n]; ok {
		return rel, nil
	}
	switch x := n.(type) {
	case *plan.Scan:
		return runScan(ctx, x)
	case *plan.Project:
		if sp := matchPipeline(ctx, x); sp != nil {
			return runPipeline(ctx, sp)
		}
		return runProject(ctx, x)
	case *plan.Filter:
		if sp := matchPipeline(ctx, x); sp != nil {
			return runPipeline(ctx, sp)
		}
		return runFilter(ctx, x)
	case *plan.Join:
		adapted, err := adaptPlan(ctx, x)
		if err != nil {
			return nil, err
		}
		if j, still := adapted.(*plan.Join); still {
			return runJoin(ctx, j)
		}
		return Run(ctx, adapted)
	case *plan.Cross:
		adapted, err := adaptPlan(ctx, x)
		if err != nil {
			return nil, err
		}
		if c, still := adapted.(*plan.Cross); still {
			return runCross(ctx, c)
		}
		return Run(ctx, adapted)
	case *plan.Bound:
		if rel, ok := ctx.bound[x.Input]; ok {
			return rel, nil
		}
		return Run(ctx, x.Input)
	case *plan.Agg:
		return runAgg(ctx, x)
	case *plan.Sort:
		return runSort(ctx, x)
	case *plan.Limit:
		return runLimit(ctx, x)
	case *plan.OneRow:
		parts := make([][]value.Row, ctx.Cluster.Partitions())
		parts[0] = []value.Row{{}}
		return &Relation{Schema: plan.Schema{}, Parts: parts, Single: true}, nil
	case *plan.MultiJoin:
		return nil, fmt.Errorf("exec: unoptimized MultiJoin reached the executor")
	}
	return nil, fmt.Errorf("exec: unsupported plan node %T", n)
}

func runScan(ctx *Context, s *plan.Scan) (*Relation, error) {
	defer ctx.Timings.Track("scan")()
	parts, keys, err := scanParts(ctx, s)
	if err != nil {
		return nil, err
	}
	return &Relation{Schema: s.Out, Parts: parts, HashKeys: keys}, nil
}

// scanParts resolves the stored partitions behind a scan, re-spreading when
// the stored layout doesn't match the cluster shape, and returns the hash
// keys the scan may advertise. Shared by runScan and the fused pipeline.
func scanParts(ctx *Context, s *plan.Scan) ([][]value.Row, []string, error) {
	parts, err := ctx.Tables.TableParts(s.Table.Name)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) != ctx.Cluster.Partitions() {
		// Re-spread (e.g. when a table was loaded under a different layout).
		return ctx.Cluster.ScatterRoundRobin(flatten(parts)), nil, nil
	}
	return parts, scanHashKeys(s), nil
}

// scanHashKeys returns the hash keys a layout-matching scan may advertise:
// a declared hash-partitioned table scans out pre-placed, so joins and
// groupings on the column skip their shuffle (the paper's "R was already
// partitioned on the join key"). Shared by the materialized and paged paths.
func scanHashKeys(s *plan.Scan) []string {
	if s.Table.PartitionCol == "" {
		return nil
	}
	idx := s.Table.Schema.IndexOf(s.Table.PartitionCol)
	if idx < 0 || idx >= len(s.Out) {
		return nil
	}
	keyCol := &plan.Col{Idx: idx, Name: s.Out[idx].Name, T: s.Out[idx].T}
	return []string{keyCol.String()}
}

func flatten(parts [][]value.Row) []value.Row {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]value.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func runProject(ctx *Context, p *plan.Project) (*Relation, error) {
	// The projection-over-join fusion below bypasses Run's Join/Cross cases,
	// so the adaptive check must happen here too before the region executes.
	switch p.Input.(type) {
	case *plan.Join, *plan.Cross:
		adapted, err := adaptPlan(ctx, p.Input)
		if err != nil {
			return nil, err
		}
		p = &plan.Project{Input: adapted, Exprs: p.Exprs, Out: p.Out}
	}
	// Fuse a projection directly above a join into the join itself: the
	// concatenated row is built transiently per match and only the
	// projected row materializes. This is what makes the optimizer's eager
	// projections (§4.1) pay off — the wide matrix pair never exists as an
	// intermediate.
	switch in := p.Input.(type) {
	case *plan.Join:
		return runJoinWith(ctx, in, &projectSpec{exprs: p.Exprs, out: p.Out})
	case *plan.Cross:
		return runCrossWith(ctx, in, &projectSpec{exprs: p.Exprs, out: p.Out})
	}
	in, err := Run(ctx, p.Input)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("project")()
	out := make([][]value.Row, len(in.Parts))
	ec := ctx.EvalCtx()
	err = ctx.Cluster.ParallelTasks("project", taskObs(ctx), func(part, _ int) (func() error, error) {
		var rows []value.Row
		if ctx.BatchSize > 0 {
			var err error
			rows, err = batchProjectPart(ctx, ec, p.Exprs, in.Parts[part])
			if err != nil {
				return nil, err
			}
		} else {
			rows = make([]value.Row, 0, len(in.Parts[part]))
			for _, r := range in.Parts[part] {
				nr := make(value.Row, len(p.Exprs))
				for i, e := range p.Exprs {
					v, err := e.Eval(ec, r)
					if err != nil {
						return nil, err
					}
					nr[i] = v
				}
				rows = append(rows, nr)
			}
		}
		return func() error {
			out[part] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Cluster.ChargeTuples(int64(in.NumRows())); err != nil {
		return nil, opErr("project", err)
	}
	// A projection keeps the physical placement of its input; preserved
	// hash keys would require rewriting them through the projection, so we
	// conservatively keep only Single.
	return &Relation{Schema: p.Out, Parts: out, Single: in.Single}, nil
}

func runFilter(ctx *Context, f *plan.Filter) (*Relation, error) {
	in, err := Run(ctx, f.Input)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("filter")()
	out := make([][]value.Row, len(in.Parts))
	ec := ctx.EvalCtx()
	err = ctx.Cluster.ParallelTasks("filter", taskObs(ctx), func(part, _ int) (func() error, error) {
		var rows []value.Row
		if ctx.BatchSize > 0 {
			var err error
			rows, err = batchFilterPart(ctx, ec, f.Pred, in.Parts[part])
			if err != nil {
				return nil, err
			}
		} else {
			for _, r := range in.Parts[part] {
				v, err := f.Pred.Eval(ec, r)
				if err != nil {
					return nil, err
				}
				if v.Kind == value.KindBool && v.B {
					rows = append(rows, r)
				}
			}
		}
		return func() error {
			out[part] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: f.Schema(), Parts: out, HashKeys: in.HashKeys, Single: in.Single}
	// Filters materialize their kept rows just like projections materialize
	// theirs; charge them so filtering is not free in the simulated cost
	// model.
	if err := ctx.Cluster.ChargeTuples(int64(rel.NumRows())); err != nil {
		return nil, opErr("filter", err)
	}
	return rel, nil
}

func runSort(ctx *Context, s *plan.Sort) (*Relation, error) {
	in, err := Run(ctx, s.Input)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("sort")()
	rows := ctx.Cluster.Gather(in.Parts)
	// The sort is one retryable task: the external path reads the gathered
	// rows without reordering them and writes fresh runs per attempt, the
	// in-memory path sorts in place (idempotent — re-sorting sorted rows).
	err = ctx.Cluster.RunTask("sort", taskObs(ctx), func(attempt int) error {
		if ctx.spillEnabled() {
			sorted, serr := externalSort(ctx, s.Keys, rows, attempt)
			if serr != nil {
				return serr
			}
			rows = sorted
			return nil
		}
		return sortRowsStable(s.Keys, rows)
	})
	if err != nil {
		return nil, opErr("sort", err)
	}
	// The gather materializes every row on one partition.
	if err := ctx.Cluster.ChargeTuples(int64(len(rows))); err != nil {
		return nil, opErr("sort", err)
	}
	parts := make([][]value.Row, ctx.Cluster.Partitions())
	parts[0] = rows
	return &Relation{Schema: s.Schema(), Parts: parts, Single: true}, nil
}

// sortRowsStable stable-sorts rows in place by the order keys.
func sortRowsStable(keys []plan.OrderKey, rows []value.Row) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := compareRowsByKeys(keys, rows[i], rows[j])
		if err != nil {
			sortErr = err
			return false
		}
		return c < 0
	})
	return sortErr
}

// compareRowsByKeys orders two rows by the sort keys (-1, 0, +1).
func compareRowsByKeys(keys []plan.OrderKey, a, b value.Row) (int, error) {
	for _, k := range keys {
		c, err := compareForSort(a[k.Col], b[k.Col])
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c, nil
		}
		return c, nil
	}
	return 0, nil
}

// compareForSort orders values with NULLs first.
func compareForSort(a, b value.Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	return a.Compare(b)
}

func runLimit(ctx *Context, l *plan.Limit) (*Relation, error) {
	// In batch mode, a fused-pipeline input takes the limit as a per-partition
	// cap: production stops at l.N rows via the selection vector, so the
	// discarded tail of a batch is neither materialized by the arena nor
	// charged to the tuple budget (the row path materializes and charges every
	// surviving pipeline row first).
	var (
		in  *Relation
		err error
	)
	if ctx.BatchSize > 0 {
		if sp := matchPipeline(ctx, l.Input); sp != nil {
			in, err = runPipelineLimited(ctx, sp, l.N)
		}
	}
	if in == nil && err == nil {
		in, err = Run(ctx, l.Input)
	}
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("limit")()
	// Truncate every partition before the gather: LIMIT k can never surface
	// more than the first k rows of any partition, so a huge relation
	// contributes O(P·k) rows to the single-partition gather instead of its
	// full size. Gather concatenates partitions in order, so the first k of
	// the trimmed gather equal the first k of the untrimmed one.
	trimmed := make([][]value.Row, len(in.Parts))
	for i, p := range in.Parts {
		if len(p) > l.N {
			p = p[:l.N]
		}
		trimmed[i] = p
	}
	rows := ctx.Cluster.Gather(trimmed)
	if len(rows) > l.N {
		rows = rows[:l.N]
	}
	// Charge the rows that survive the truncation — what the operator
	// actually materializes on its single output partition.
	if err := ctx.Cluster.ChargeTuples(int64(len(rows))); err != nil {
		return nil, opErr("limit", err)
	}
	parts := make([][]value.Row, ctx.Cluster.Partitions())
	parts[0] = rows
	return &Relation{Schema: l.Schema(), Parts: parts, Single: true}, nil
}
