package exec

import (
	"fmt"
	"testing"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

// memSource is an in-memory TableSource for tests.
type memSource map[string][][]value.Row

func (m memSource) TableParts(name string) ([][]value.Row, error) {
	parts, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("no table %q", name)
	}
	return parts, nil
}

func testCtx(tables memSource) *Context {
	cl := cluster.New(cluster.Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true})
	return &Context{Cluster: cl, Tables: tables, Timings: NewTimings()}
}

func scanNode(name string, rows int64, cols ...catalog.Column) *plan.Scan {
	meta := catalog.NewTableMeta(name, catalog.Schema{Cols: cols}, rows)
	out := make(plan.Schema, len(cols))
	for i, c := range cols {
		out[i] = plan.Field{Name: c.Name, T: c.Type}
	}
	return &plan.Scan{Table: meta, Out: out}
}

func intTable(ctx *Context, n int) [][]value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.Int(int64(i % 5))}
	}
	return ctx.Cluster.ScatterRoundRobin(rows)
}

func col(idx int, t types.T) *plan.Col {
	return &plan.Col{Idx: idx, Name: fmt.Sprintf("c%d", idx), T: t}
}

func TestScanRepartitionsMismatchedLayout(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	// Store with the wrong number of partitions.
	tables["t"] = [][]value.Row{{{value.Int(1), value.Int(0)}}, {{value.Int(2), value.Int(0)}}}
	s := scanNode("t", 2,
		catalog.Column{Name: "a", Type: types.TInt},
		catalog.Column{Name: "b", Type: types.TInt})
	rel, err := Run(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Parts) != ctx.Cluster.Partitions() || rel.NumRows() != 2 {
		t.Fatalf("parts %d rows %d", len(rel.Parts), rel.NumRows())
	}
}

func TestFilterAndProject(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 20)
	s := scanNode("t", 20,
		catalog.Column{Name: "a", Type: types.TInt},
		catalog.Column{Name: "b", Type: types.TInt})
	pred := &plan.Binary{Op: "<", Kind: plan.BinCompare, L: col(0, types.TInt), R: &plan.Const{V: value.Int(5), T: types.TInt}, T: types.TBool}
	proj := &plan.Project{
		Input: &plan.Filter{Input: s, Pred: pred},
		Exprs: []plan.Expr{&plan.Binary{Op: "*", Kind: plan.BinArith, L: col(0, types.TInt), R: &plan.Const{V: value.Int(10), T: types.TInt}, T: types.TInt}},
		Out:   plan.Schema{{Name: "x", T: types.TInt}},
	}
	rel, err := Run(ctx, proj)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 5 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	sum := int64(0)
	for _, r := range rel.Rows() {
		sum += r[0].I
	}
	if sum != (0+1+2+3+4)*10 {
		t.Fatalf("sum %d", sum)
	}
}

func joinNode(l, r plan.Node, lkey, rkey int) *plan.Join {
	out := make(plan.Schema, 0)
	out = append(out, l.Schema()...)
	out = append(out, r.Schema()...)
	return &plan.Join{
		L: l, R: r,
		LKeys: []plan.Expr{col(lkey, types.TInt)},
		RKeys: []plan.Expr{col(rkey, types.TInt)},
		Out:   out,
	}
}

func TestHashJoin(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 10)
	tables["r"] = intTable(ctx, 10)
	l := scanNode("l", 10, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 10, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	rel, err := Run(ctx, joinNode(l, r, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 10 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	for _, row := range rel.Rows() {
		if row[0].I != row[2].I {
			t.Fatalf("join key mismatch %v", row)
		}
		if len(row) != 4 {
			t.Fatalf("row width %d", len(row))
		}
	}
	if rel.HashKeys == nil {
		t.Fatal("join output should advertise hash partitioning")
	}
}

func TestJoinShuffleSkipWhenPartitioned(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 40)
	tables["r"] = intTable(ctx, 40)
	l := scanNode("l", 40, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 40, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	// First join shuffles both sides; a second join on the same key over
	// the first join's output must reuse the placement for that side.
	j1 := joinNode(l, r, 0, 0)
	rel1, err := Run(ctx, j1)
	if err != nil {
		t.Fatal(err)
	}
	rounds1 := ctx.Cluster.Stats().Snapshot().ShuffleRounds

	// Joining j1's output (hash-partitioned by column 0) with a fresh scan:
	// only the fresh side shuffles.
	_ = rel1
	tables["m"] = intTable(ctx, 40)
	m := scanNode("m", 40, catalog.Column{Name: "e", Type: types.TInt}, catalog.Column{Name: "f", Type: types.TInt})
	j2 := joinNode(j1, m, 0, 0)
	if _, err := Run(ctx, j2); err != nil {
		t.Fatal(err)
	}
	rounds2 := ctx.Cluster.Stats().Snapshot().ShuffleRounds
	// j2 re-runs j1 (2 shuffles) plus exactly one more for m.
	if rounds2-rounds1 != 3 {
		t.Fatalf("second join used %d shuffles, want 3 (two for the re-run inner join, one for the new side)", rounds2-rounds1)
	}
}

func TestJoinResidual(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 10)
	tables["r"] = intTable(ctx, 10)
	l := scanNode("l", 10, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 10, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	j := joinNode(l, r, 1, 1) // join on b = d (values 0..4, 2 rows each)
	j.Residual = []plan.Expr{&plan.Binary{Op: "<>", Kind: plan.BinCompare, L: col(0, types.TInt), R: col(2, types.TInt), T: types.TBool}}
	rel, err := Run(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	// Each key has 2 l-rows × 2 r-rows = 4 pairs, minus the 2 identical
	// pairs = 2 per key × 5 keys = 10.
	if rel.NumRows() != 10 {
		t.Fatalf("rows %d", rel.NumRows())
	}
}

func TestCrossJoinBroadcast(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["big"] = intTable(ctx, 30)
	tables["small"] = intTable(ctx, 3)
	big := scanNode("big", 30, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	small := scanNode("small", 3, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	out := append(append(plan.Schema{}, big.Out...), small.Out...)
	cross := &plan.Cross{L: big, R: small, Out: out}
	rel, err := Run(ctx, cross)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 90 {
		t.Fatalf("rows %d", rel.NumRows())
	}
	if ctx.Cluster.Stats().Snapshot().BroadcastRounds != 1 {
		t.Fatal("expected exactly one broadcast")
	}
	// Column order must be L then R even though R was broadcast.
	for _, row := range rel.Rows() {
		if row[0].I > 29 || row[2].I > 2 {
			t.Fatalf("column order wrong: %v", row)
		}
	}
	// And with the big side on the right, order is still L-then-R.
	cross2 := &plan.Cross{L: small, R: big, Out: append(append(plan.Schema{}, small.Out...), big.Out...)}
	rel2, err := Run(ctx, cross2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rel2.Rows() {
		if row[0].I > 2 || row[2].I > 29 {
			t.Fatalf("column order wrong after broadcast-left: %v", row)
		}
	}
}

func aggNode(input plan.Node, groupCol int, aggName string, inputCol int) *plan.Agg {
	spec, _ := builtins.LookupAgg(aggName)
	var groupBy []plan.Expr
	out := plan.Schema{}
	if groupCol >= 0 {
		groupBy = []plan.Expr{col(groupCol, types.TInt)}
		out = append(out, plan.Field{Name: "g", T: types.TInt})
	}
	var in plan.Expr
	if inputCol >= 0 {
		in = col(inputCol, types.TInt)
	}
	resT, _ := spec.ResultType(types.TInt)
	out = append(out, plan.Field{Name: aggName, T: resT})
	return &plan.Agg{Input: input, GroupBy: groupBy, Aggs: []plan.AggCall{{Spec: spec, Input: in, T: resT}}, Out: out}
}

func TestGroupedAggregate(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 50) // b = a % 5
	s := scanNode("t", 50, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	rel, err := Run(ctx, aggNode(s, 1, "count", -1))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 5 {
		t.Fatalf("groups %d", rel.NumRows())
	}
	for _, r := range rel.Rows() {
		if r[1].I != 10 {
			t.Fatalf("group %v count %v", r[0], r[1])
		}
	}
}

func TestScalarAggregateSinglePartitionOutput(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 50)
	s := scanNode("t", 50, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	rel, err := Run(ctx, aggNode(s, -1, "sum", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Single {
		t.Fatal("scalar aggregate should be single-partition")
	}
	rows := rel.Rows()
	if len(rows) != 1 || rows[0][0].I != 49*50/2 {
		t.Fatalf("rows %v", rows)
	}
}

func TestAggregateShuffleSkipWhenAligned(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 40)
	tables["r"] = intTable(ctx, 40)
	l := scanNode("l", 40, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 40, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	j := joinNode(l, r, 0, 0)
	// Group by the join key: rows are already co-located, so the aggregate
	// must not move any partial states.
	agg := aggNode(j, 0, "count", -1)
	before := ctx.Cluster.Stats().Snapshot()
	rel, err := Run(ctx, agg)
	if err != nil {
		t.Fatal(err)
	}
	after := ctx.Cluster.Stats().Snapshot()
	if rel.NumRows() != 40 {
		t.Fatalf("groups %d", rel.NumRows())
	}
	// Two shuffles for the join inputs, none for the aggregate.
	if after.ShuffleRounds-before.ShuffleRounds != 2 {
		t.Fatalf("shuffle rounds = %d, want 2", after.ShuffleRounds-before.ShuffleRounds)
	}
}

func TestSortAndLimit(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["t"] = intTable(ctx, 20)
	s := scanNode("t", 20, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	srt := &plan.Sort{Input: s, Keys: []plan.OrderKey{{Col: 1, Desc: false}, {Col: 0, Desc: true}}}
	lim := &plan.Limit{Input: srt, N: 4}
	rel, err := Run(ctx, lim)
	if err != nil {
		t.Fatal(err)
	}
	rows := rel.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// b=0 group, a descending: 15, 10, 5, 0.
	want := []int64{15, 10, 5, 0}
	for i, r := range rows {
		if r[1].I != 0 || r[0].I != want[i] {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestTimingsAccumulate(t *testing.T) {
	tm := NewTimings()
	tm.Add("x", 5)
	tm.Add("x", 7)
	tm.Add("y", 1)
	if tm.Get("x") != 12 || tm.Get("y") != 1 {
		t.Fatal("timings wrong")
	}
	if tm.Total() != 13 {
		t.Fatalf("total %v", tm.Total())
	}
	labels := tm.Labels()
	if len(labels) != 2 || labels[0] != "x" || labels[1] != "y" {
		t.Fatalf("labels %v", labels)
	}
	// Nil timings are a no-op sink.
	var nilT *Timings
	nilT.Add("z", 1)
	if nilT.Get("z") != 0 || nilT.Total() != 0 || nilT.Labels() != nil {
		t.Fatal("nil timings should be inert")
	}
}

func TestRunRejectsMultiJoin(t *testing.T) {
	ctx := testCtx(memSource{})
	if _, err := Run(ctx, &plan.MultiJoin{}); err == nil {
		t.Fatal("unoptimized MultiJoin accepted")
	}
}

func TestOneRow(t *testing.T) {
	ctx := testCtx(memSource{})
	rel, err := Run(ctx, &plan.OneRow{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumRows() != 1 || !rel.Single {
		t.Fatalf("one-row relation %v", rel)
	}
}
