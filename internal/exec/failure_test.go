package exec

import (
	"errors"
	"strings"
	"testing"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/cluster"
	"relalg/internal/linalg"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

// failingSource errors on lookup, simulating a lost storage node.
type failingSource struct{}

func (failingSource) TableParts(string) ([][]value.Row, error) {
	return nil, errors.New("storage node lost")
}

func TestScanFailurePropagates(t *testing.T) {
	ctx := testCtx(nil)
	ctx.Tables = failingSource{}
	s := scanNode("t", 1, catalog.Column{Name: "a", Type: types.TInt})
	if _, err := Run(ctx, s); err == nil || !strings.Contains(err.Error(), "storage node lost") {
		t.Fatalf("error = %v", err)
	}
	// The failure must also surface through downstream operators.
	ops := []plan.Node{
		&plan.Project{Input: s, Exprs: []plan.Expr{col(0, types.TInt)}, Out: plan.Schema{{Name: "a", T: types.TInt}}},
		&plan.Filter{Input: s, Pred: &plan.Const{V: value.Bool(true), T: types.TBool}},
		&plan.Sort{Input: s},
		&plan.Limit{Input: s, N: 1},
		&plan.Agg{Input: s, Out: plan.Schema{}},
		joinNode(s, s, 0, 0),
		&plan.Cross{L: s, R: s, Out: plan.Schema{}},
	}
	for i, op := range ops {
		if _, err := Run(ctx, op); err == nil {
			t.Errorf("op %d: scan failure swallowed", i)
		}
	}
}

// TestRuntimeExpressionErrorAborts: a runtime evaluation error on one
// partition (singular matrix inverse) aborts the whole query with the
// underlying error, from every operator that evaluates expressions.
func TestRuntimeExpressionErrorAborts(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	// One singular matrix among several invertible ones, spread across
	// partitions.
	var rows []value.Row
	for i := 0; i < 10; i++ {
		m := linalg.Identity(2)
		if i == 7 {
			m = linalg.NewMatrix(2, 2) // singular
		}
		rows = append(rows, value.Row{value.Matrix(m)})
	}
	tables["m"] = ctx.Cluster.ScatterRoundRobin(rows)
	s := scanNode("m", 10, catalog.Column{Name: "mat", Type: types.TMatrix(types.KnownDim(2), types.KnownDim(2))})
	inv, _ := builtins.Lookup("matrix_inverse")
	call := &plan.Call{Fn: inv, Args: []plan.Expr{col(0, types.TMatrix(types.KnownDim(2), types.KnownDim(2)))}, T: types.TMatrix(types.KnownDim(2), types.KnownDim(2))}

	proj := &plan.Project{Input: s, Exprs: []plan.Expr{call}, Out: plan.Schema{{Name: "inv", T: call.T}}}
	if _, err := Run(testCtxShared(ctx, tables), proj); err == nil || !strings.Contains(err.Error(), "singular") {
		t.Fatalf("projection error = %v", err)
	}

	// The same failure through a filter predicate...
	gt := &plan.Binary{Op: ">", Kind: plan.BinCompare,
		L: &plan.Call{Fn: mustLookup(t, "trace"), Args: []plan.Expr{call}, T: types.TDouble},
		R: &plan.Const{V: value.Double(0), T: types.TDouble}, T: types.TBool}
	filt := &plan.Filter{Input: s, Pred: gt}
	if _, err := Run(testCtxShared(ctx, tables), filt); err == nil {
		t.Fatal("filter swallowed evaluation error")
	}

	// ...and through an aggregate input.
	sum, _ := builtins.LookupAgg("sum")
	agg := &plan.Agg{Input: s, Aggs: []plan.AggCall{{Spec: sum, Input: call, T: call.T}}, Out: plan.Schema{{Name: "s", T: call.T}}}
	if _, err := Run(testCtxShared(ctx, tables), agg); err == nil {
		t.Fatal("aggregate swallowed evaluation error")
	}
}

func mustLookup(t *testing.T, name string) *builtins.Builtin {
	t.Helper()
	b, ok := builtins.Lookup(name)
	if !ok {
		t.Fatalf("missing builtin %s", name)
	}
	return b
}

// testCtxShared makes a fresh context over the same tables (fresh budget).
func testCtxShared(old *Context, tables memSource) *Context {
	c := testCtx(tables)
	return c
}

// TestJoinKeyErrorAborts: an error while evaluating a join key (during the
// shuffle routing) surfaces instead of silently misrouting rows.
func TestJoinKeyErrorAborts(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 10)
	tables["r"] = intTable(ctx, 10)
	l := scanNode("l", 10, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 10, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	bad := &plan.Col{Idx: 99, Name: "missing", T: types.TInt} // out of range at run time
	j := &plan.Join{L: l, R: r, LKeys: []plan.Expr{bad}, RKeys: []plan.Expr{col(0, types.TInt)},
		Out: append(append(plan.Schema{}, l.Out...), r.Out...)}
	if _, err := Run(ctx, j); err == nil {
		t.Fatal("join key evaluation error swallowed")
	}
}

// TestResidualErrorAborts: errors inside residual predicates surface too.
func TestResidualErrorAborts(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 4)
	tables["r"] = intTable(ctx, 4)
	l := scanNode("l", 4, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 4, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	bad := &plan.Binary{Op: "=", Kind: plan.BinCompare, L: &plan.Col{Idx: 50, T: types.TInt}, R: col(0, types.TInt), T: types.TBool}
	cross := &plan.Cross{L: l, R: r, Residual: []plan.Expr{bad},
		Out: append(append(plan.Schema{}, l.Out...), r.Out...)}
	if _, err := Run(ctx, cross); err == nil {
		t.Fatal("cross residual error swallowed")
	}
}

// TestBudgetErrorsNameOperator: when the intermediate-tuple budget trips, the
// error names the operator that tripped it and errors.Is still matches
// cluster.ErrResourceExhausted (callers branch on the sentinel; humans read
// the label).
func TestBudgetErrorsNameOperator(t *testing.T) {
	newCtx := func(tables memSource, budget int64) *Context {
		cl := cluster.New(cluster.Config{Nodes: 2, PartitionsPerNode: 2,
			SerializeShuffles: true, MaxIntermediateTuples: budget})
		return &Context{Cluster: cl, Tables: tables, Timings: NewTimings()}
	}

	tables := memSource{}
	seed := testCtx(tables)
	tables["l"] = intTable(seed, 40)
	tables["r"] = intTable(seed, 40)
	l := scanNode("l", 40, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 40, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})

	cases := []struct {
		label  string
		budget int64
		node   plan.Node
	}{
		// Join on b=d (5 distinct values → 40*8=320 matches) blows a 50-tuple
		// budget inside the probe loop. Sort and aggregate charge their 40
		// output rows, so a budget of 30 trips them (scans don't charge).
		{"hash join", 50, joinNode(l, r, 1, 1)},
		{"cross join", 50, &plan.Cross{L: l, R: r, Out: append(append(plan.Schema{}, l.Out...), r.Out...)}},
		{"sort", 30, &plan.Sort{Input: l, Keys: []plan.OrderKey{{Col: 0}}}},
		{"aggregate", 30, &plan.Agg{Input: l,
			GroupBy: []plan.Expr{col(0, types.TInt)},
			Out:     plan.Schema{{Name: "a", T: types.TInt}}}},
	}
	for _, tc := range cases {
		_, err := Run(newCtx(tables, tc.budget), tc.node)
		if err == nil {
			t.Errorf("%s: budget not tripped", tc.label)
			continue
		}
		if !errors.Is(err, cluster.ErrResourceExhausted) {
			t.Errorf("%s: errors.Is(ErrResourceExhausted) = false: %v", tc.label, err)
		}
		if !strings.Contains(err.Error(), tc.label+":") {
			t.Errorf("%s: error does not name the operator: %v", tc.label, err)
		}
	}
}

// TestSortOnUncomparableErrors: ORDER BY over vectors is a runtime error,
// not a panic.
func TestSortOnUncomparableErrors(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	rows := []value.Row{
		{value.Vector(linalg.VectorOf(1))},
		{value.Vector(linalg.VectorOf(2))},
	}
	tables["v"] = ctx.Cluster.ScatterRoundRobin(rows)
	s := scanNode("v", 2, catalog.Column{Name: "vec", Type: types.TVector(types.UnknownDim)})
	srt := &plan.Sort{Input: s, Keys: []plan.OrderKey{{Col: 0}}}
	if _, err := Run(ctx, srt); err == nil {
		t.Fatal("sorting vectors succeeded")
	}
}
