package exec

import (
	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// External merge sort: when the memory governor denies the sort buffer more
// bytes, the buffered batch is stable-sorted and spilled as one run; on
// read-back a k-way merge recombines the runs. Ties across runs break toward
// the earlier run, and the final in-memory batch merges last, so the output
// row order is exactly what sort.SliceStable over the whole input would have
// produced — external and in-memory sorts are bit-identical.

// externalSort sorts rows by keys under the query's memory budget, spilling
// sorted runs when the sort buffer exceeds its reservation. The attempt is
// the owning task's execution count: it keys the spill write-fault draws and
// guarantees fresh, eventually-clean runs on retry (the input slice is never
// reordered, so every attempt sees the same rows).
func externalSort(ctx *Context, keys []plan.OrderKey, rows []value.Row, attempt int) ([]value.Row, error) {
	res := ctx.Spill.Governor().Reservation("sort")
	defer res.Release()

	var runs []*spill.Run
	removeRuns := func() {
		for _, r := range runs {
			_ = r.Remove() // best-effort on error paths; Manager.Close sweeps the rest
		}
	}

	var batch []value.Row
	for _, r := range rows {
		fp := rowFootprint(r)
		if !res.Grow(fp) {
			run, err := spillSortedRun(ctx, keys, batch, attempt)
			if err != nil {
				removeRuns()
				return nil, err
			}
			runs = append(runs, run)
			batch = nil
			res.Reset()
			res.Force(fp) // the row that tripped the budget still joins the fresh batch
		}
		batch = append(batch, r)
	}
	if len(runs) == 0 {
		// Everything fit: plain in-memory sort.
		if err := sortRowsStable(keys, batch); err != nil {
			return nil, err
		}
		return batch, nil
	}
	if err := sortRowsStable(keys, batch); err != nil {
		removeRuns()
		return nil, err
	}
	out, err := mergeSortedRuns(ctx, keys, runs, batch, len(rows))
	if err != nil {
		removeRuns()
		return nil, err
	}
	for _, run := range runs {
		if err := run.Remove(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// spillSortedRun stable-sorts batch and writes it out as one run.
func spillSortedRun(ctx *Context, keys []plan.OrderKey, batch []value.Row, attempt int) (*spill.Run, error) {
	if err := sortRowsStable(keys, batch); err != nil {
		return nil, err
	}
	w, err := ctx.Spill.NewWriterAt("sort", attempt)
	if err != nil {
		return nil, err
	}
	for _, r := range batch {
		if err := w.Append(r); err != nil {
			_ = w.Abort() // the append error is the actionable one
			return nil, err
		}
	}
	return w.Finish()
}

// mergeSource is one input of the k-way merge: a spilled run or the final
// in-memory batch.
type mergeSource struct {
	reader *spill.Reader // nil for the in-memory batch
	batch  []value.Row
	i      int
	cur    value.Row
	ok     bool
}

func (s *mergeSource) advance() error {
	if s.reader == nil {
		if s.i < len(s.batch) {
			s.cur, s.ok = s.batch[s.i], true
			s.i++
		} else {
			s.cur, s.ok = nil, false
		}
		return nil
	}
	row, ok, err := s.reader.Next()
	if err != nil {
		return err
	}
	s.cur, s.ok = row, ok
	return nil
}

// mergeSortedRuns merges the sorted runs plus the final sorted in-memory
// batch. Sources are ordered by creation (run 0 holds the earliest input
// rows, the batch the latest), and ties select the lowest source index, which
// is what preserves the stable order of the original input.
func mergeSortedRuns(ctx *Context, keys []plan.OrderKey, runs []*spill.Run, batch []value.Row, total int) ([]value.Row, error) {
	sources := make([]*mergeSource, 0, len(runs)+1)
	closeAll := func() {
		for _, s := range sources {
			if s.reader != nil {
				_ = s.reader.Close() // read-side error already reported
			}
		}
	}
	for _, run := range runs {
		rd, err := run.Reader()
		if err != nil {
			closeAll()
			return nil, err
		}
		sources = append(sources, &mergeSource{reader: rd})
	}
	sources = append(sources, &mergeSource{batch: batch})
	for _, s := range sources {
		if err := s.advance(); err != nil {
			closeAll()
			return nil, err
		}
	}

	out := make([]value.Row, 0, total)
	for {
		best := -1
		for i, s := range sources {
			if !s.ok {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			c, err := compareRowsByKeys(keys, s.cur, sources[best].cur)
			if err != nil {
				closeAll()
				return nil, err
			}
			if c < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, sources[best].cur)
		if err := sources[best].advance(); err != nil {
			closeAll()
			return nil, err
		}
	}
	for _, s := range sources {
		if s.reader != nil {
			if err := s.reader.Close(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
