package exec

import (
	"fmt"
	"sync"

	"relalg/internal/plan"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// keyStrings renders join/group key expressions for partitioning-property
// comparison.
func keyStrings(keys []plan.Expr) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalKeys evaluates key expressions against a row.
func evalKeys(ec *plan.EvalCtx, keys []plan.Expr, row value.Row) ([]value.Value, error) {
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		v, err := k.Eval(ec, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func hashVals(vals []value.Value) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= v.Hash()
		h *= prime64
	}
	return h
}

// valsEqual compares key tuples with SQL semantics (numeric kinds compare by
// value; NULL equals NULL for grouping purposes).
func valsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNumeric() && b[i].IsNumeric() {
			x, _ := a[i].AsDouble()
			y, _ := b[i].AsDouble()
			if x != y {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// projectSpec is a projection fused into a join: each surviving
// concatenated row is transformed through exprs before materializing.
type projectSpec struct {
	exprs []plan.Expr
	out   plan.Schema
}

// emit applies the fused projection (if any) to a concatenated row.
func (p *projectSpec) emit(ec *plan.EvalCtx, concat value.Row) (value.Row, error) {
	if p == nil {
		return concat, nil
	}
	out := make(value.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(ec, concat)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func runJoin(ctx *Context, j *plan.Join) (*Relation, error) {
	return runJoinWith(ctx, j, nil)
}

func runJoinWith(ctx *Context, j *plan.Join, proj *projectSpec) (*Relation, error) {
	left, err := Run(ctx, j.L)
	if err != nil {
		return nil, err
	}
	right, err := Run(ctx, j.R)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("join")()

	lkeyStr := keyStrings(j.LKeys)
	rkeyStr := keyStrings(j.RKeys)

	// Shuffle each side unless it is already hash-partitioned on its join
	// keys (or everything is on a single partition already).
	lparts := left.Parts
	if !left.Single && !sameKeys(left.HashKeys, lkeyStr) {
		lparts, err = shuffleByKeys(ctx, left.Parts, j.LKeys)
		if err != nil {
			return nil, err
		}
	}
	rparts := right.Parts
	bothSingle := left.Single && right.Single
	if !bothSingle {
		if left.Single {
			// The left side lives on one partition; bring the right side
			// there rather than shuffling (cheaper for tiny left sides is
			// the reverse, but correctness first: co-locate on partitions).
			lparts, err = shuffleByKeys(ctx, left.Parts, j.LKeys)
			if err != nil {
				return nil, err
			}
		}
		if !sameKeys(right.HashKeys, rkeyStr) || right.Single {
			rparts, err = shuffleByKeys(ctx, right.Parts, j.RKeys)
			if err != nil {
				return nil, err
			}
		}
	}

	out := make([][]value.Row, ctx.Cluster.Partitions())
	err = ctx.Cluster.ParallelTasks("hash join", taskObs(ctx), func(part, attempt int) (func() error, error) {
		// Build on the smaller side of this partition.
		lrows, rrows := lparts[part], rparts[part]
		buildLeft := len(lrows) <= len(rrows)

		buildRows, probeRows := lrows, rrows
		buildKeys, probeKeys := j.LKeys, j.RKeys
		if !buildLeft {
			buildRows, probeRows = rrows, lrows
			buildKeys, probeKeys = j.RKeys, j.LKeys
		}
		pj := &partJoin{
			ctx:       ctx,
			ec:        ctx.EvalCtx(),
			j:         j,
			proj:      proj,
			buildKeys: buildKeys,
			probeKeys: probeKeys,
			buildLeft: buildLeft,
			charge:    newCharger(ctx, "hash join"),
			part:      part,
			attempt:   attempt,
			bsize:     ctx.BatchSize,
		}
		if err := pj.run(buildRows, probeRows); err != nil {
			return nil, err
		}
		return func() error {
			out[part] = pj.rows
			return pj.charge.commit()
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: j.Out, Parts: out, HashKeys: lkeyStr}
	if proj != nil {
		// The projection invalidates the key-expression column indexes.
		rel.Schema = proj.out
		rel.HashKeys = nil
	}
	return rel, nil
}

// joinBucket is one build-side entry of the hash table: the evaluated key
// tuple plus the source row.
type joinBucket struct {
	keys []value.Value
	row  value.Row
}

// partJoin joins one partition's build and probe slices, going out-of-core
// (grace hash join) when the memory governor denies the build table its
// working set.
type partJoin struct {
	ctx       *Context
	ec        *plan.EvalCtx
	j         *plan.Join
	proj      *projectSpec
	buildKeys []plan.Expr
	probeKeys []plan.Expr
	buildLeft bool
	charge    *charger
	part      int
	attempt   int // owning task attempt; keys spill write-fault draws
	bsize     int // >0 switches this partition to the batch executor
	em        *batchEmitter
	rows      []value.Row
}

// maxGraceDepth bounds the recursive re-partitioning of a grace join; at the
// limit the build table is forced into memory (skew on a single key cannot be
// subdivided by re-hashing it).
const maxGraceDepth = 3

// run joins buildRows against probeRows. Without a memory budget this is the
// strictly-in-memory hash join; with one, a denied build-table reservation
// switches the partition to grace mode.
func (pj *partJoin) run(buildRows, probeRows []value.Row) error {
	if pj.bsize > 0 {
		return pj.runBatch(buildRows, probeRows)
	}
	if !pj.ctx.spillEnabled() {
		table, _, err := pj.buildTable(buildRows, nil, false)
		if err != nil {
			return err
		}
		return pj.probeSlice(table, probeRows)
	}
	res := pj.ctx.Spill.Governor().Reservation("hash join build")
	defer res.Release()
	table, ok, err := pj.buildTable(buildRows, res, false)
	if err != nil {
		return err
	}
	if ok {
		return pj.probeSlice(table, probeRows)
	}
	// The build side does not fit. Discard the partial table (re-reading the
	// original slice keeps the spill files in input order; draining the map
	// would write them in nondeterministic map order) and grace-partition.
	res.Reset()
	return pj.grace(buildRows, probeRows, res, 0)
}

// buildTable builds the hash table over rows. With a reservation, a denied
// growth aborts the build and returns ok=false; with force set the bytes are
// charged unconditionally instead (max recursion depth).
func (pj *partJoin) buildTable(rows []value.Row, res *spill.Reservation, force bool) (map[uint64][]joinBucket, bool, error) {
	table := make(map[uint64][]joinBucket, len(rows))
	for _, r := range rows {
		kv, err := evalKeys(pj.ec, pj.buildKeys, r)
		if err != nil {
			return nil, false, err
		}
		if res != nil {
			fp := rowFootprint(r) + valsFootprint(kv)
			if force {
				res.Force(fp)
			} else if !res.Grow(fp) {
				return nil, false, nil
			}
		}
		h := hashVals(kv)
		table[h] = append(table[h], joinBucket{keys: kv, row: r})
	}
	return table, true, nil
}

// probeSlice probes every row of the slice against the table.
func (pj *partJoin) probeSlice(table map[uint64][]joinBucket, probeRows []value.Row) error {
	for _, pr := range probeRows {
		if err := pj.probeRow(table, pr); err != nil {
			return err
		}
	}
	return nil
}

// probeRow emits the join output for one probe row.
func (pj *partJoin) probeRow(table map[uint64][]joinBucket, pr value.Row) error {
	kv, err := evalKeys(pj.ec, pj.probeKeys, pr)
	if err != nil {
		return err
	}
	for _, b := range table[hashVals(kv)] {
		if !valsEqual(kv, b.keys) {
			continue
		}
		if err := pj.emitMatch(b.row, pr); err != nil {
			return err
		}
	}
	return nil
}

// graceFanout picks the sub-partition count so each sub-build plausibly fits
// the partition's budget share: enough files to subdivide the estimated build
// bytes, clamped to keep file counts sane.
func (pj *partJoin) graceFanout(buildRows []value.Row) int {
	var est int64
	for _, r := range buildRows {
		est += rowFootprint(r)
	}
	share := pj.ctx.Spill.Governor().Budget() / int64(pj.ctx.Cluster.Partitions())
	if share < minGraceShare {
		share = minGraceShare
	}
	f := int(est/share) + 1
	if f < 4 {
		f = 4
	}
	if f > 64 {
		f = 64
	}
	return f
}

// minGraceShare floors the per-partition budget share used for fanout
// estimation, so a tiny budget doesn't explode the file count.
const minGraceShare = 16 << 10

// grace runs the out-of-core join: both sides are hash-partitioned into F
// spill files by a salted re-hash of the join keys, then each sub-partition
// pair is joined independently — build sides that still don't fit recurse with
// a fresh salt until maxGraceDepth. Sub-partitions are processed in index
// order and each file preserves input order, so the output is deterministic
// (though bucket-major, unlike the in-memory probe order).
func (pj *partJoin) grace(buildRows, probeRows []value.Row, res *spill.Reservation, depth int) error {
	f := pj.graceFanout(buildRows)
	salt := graceSalt(depth)
	buildRuns, err := pj.spillSide("join-build", pj.buildKeys, buildRows, f, salt)
	if err != nil {
		return err
	}
	probeRuns, err := pj.spillSide("join-probe", pj.probeKeys, probeRows, f, salt)
	if err != nil {
		removeRunSlice(buildRuns)
		return err
	}
	for i := 0; i < f; i++ {
		err := pj.graceSub(buildRuns[i], probeRuns[i], res, depth)
		buildRuns[i], probeRuns[i] = nil, nil
		if err != nil {
			removeRunSlice(buildRuns)
			removeRunSlice(probeRuns)
			return err
		}
	}
	return nil
}

// graceSub joins one sub-partition pair and removes its run files.
func (pj *partJoin) graceSub(buildRun, probeRun *spill.Run, res *spill.Reservation, depth int) error {
	defer res.Reset()
	if buildRun.Rows == 0 || probeRun.Rows == 0 {
		// No matches possible; just reclaim the disk.
		if err := buildRun.Remove(); err != nil {
			return err
		}
		return probeRun.Remove()
	}
	subBuild, err := readRun(buildRun)
	if err != nil {
		return err
	}
	if err := buildRun.Remove(); err != nil {
		return err
	}
	table, ok, err := pj.buildTable(subBuild, res, depth+1 >= maxGraceDepth)
	if err != nil {
		_ = probeRun.Remove() // the build error is the actionable one
		return err
	}
	if !ok {
		// Still too big: recurse with the next salt so rows re-scatter.
		res.Reset()
		subProbe, err := readRun(probeRun)
		if err != nil {
			return err
		}
		if err := probeRun.Remove(); err != nil {
			return err
		}
		return pj.grace(subBuild, subProbe, res, depth+1)
	}
	rd, err := probeRun.Reader()
	if err != nil {
		return err
	}
	for {
		row, more, err := rd.Next()
		if err != nil {
			_ = rd.Close()
			return err
		}
		if !more {
			break
		}
		if err := pj.probeRow(table, row); err != nil {
			_ = rd.Close()
			return err
		}
	}
	if err := rd.Close(); err != nil {
		return err
	}
	return probeRun.Remove()
}

// spillSide hash-scatters one side's rows into f run files by
// mix64(keyHash^salt) % f, preserving input order within each file.
func (pj *partJoin) spillSide(label string, keys []plan.Expr, rows []value.Row, f int, salt uint64) ([]*spill.Run, error) {
	writers := make([]*spill.Writer, f)
	abortAll := func() {
		for _, w := range writers {
			if w != nil {
				_ = w.Abort() // the original error is the actionable one
			}
		}
	}
	for i := range writers {
		w, err := pj.ctx.Spill.NewWriterAt(fmt.Sprintf("%s-p%d-%d", label, pj.part, i), pj.attempt)
		if err != nil {
			abortAll()
			return nil, err
		}
		writers[i] = w
	}
	for _, r := range rows {
		kv, err := evalKeys(pj.ec, keys, r)
		if err != nil {
			abortAll()
			return nil, err
		}
		idx := int(mix64(hashVals(kv)^salt) % uint64(f))
		if err := writers[idx].Append(r); err != nil {
			abortAll()
			return nil, err
		}
	}
	runs := make([]*spill.Run, f)
	for i, w := range writers {
		run, err := w.Finish()
		if err != nil {
			writers[i] = nil
			abortAll()
			removeRunSlice(runs)
			return nil, err
		}
		writers[i] = nil
		runs[i] = run
	}
	return runs, nil
}

// readRun materializes a run's rows back into memory.
func readRun(run *spill.Run) ([]value.Row, error) {
	rd, err := run.Reader()
	if err != nil {
		return nil, err
	}
	rows := make([]value.Row, 0, run.Rows)
	for {
		row, more, err := rd.Next()
		if err != nil {
			_ = rd.Close()
			return nil, err
		}
		if !more {
			break
		}
		rows = append(rows, row)
	}
	if err := rd.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

// removeRunSlice best-effort-removes runs on error paths (nil entries are
// already handled); Manager.Close sweeps anything left behind.
func removeRunSlice(runs []*spill.Run) {
	for _, r := range runs {
		if r != nil {
			_ = r.Remove()
		}
	}
}

// mix64 is the splitmix64 finalizer: it decorrelates the sub-partition index
// from the partition shuffle's own use of the key hash, so grace files don't
// all collapse into one bucket.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// graceSalt varies the scatter per recursion depth so a sub-partition that
// recurses actually re-distributes.
func graceSalt(depth int) uint64 {
	return mix64(0x9e3779b97f4a7c15 * uint64(depth+1))
}

// charger batches intermediate-tuple accounting so the budget guard fires
// while a runaway join is still producing, not after it has materialized
// everything (the mechanism behind the paper's "Fail" entries). It splits
// the accounting along the task runner's compute/commit line: tick (compute)
// only peeks at the budget, so an attempt that is retried or loses a
// speculation race charges nothing; commit performs the one definitive
// charge for the winning attempt.
type charger struct {
	ctx        *Context
	op         string
	total      int64 // tuples this attempt has produced
	sinceCheck int64
}

func newCharger(ctx *Context, op string) *charger { return &charger{ctx: ctx, op: op} }

// tick counts one produced tuple and periodically peeks at the budget so a
// runaway operator aborts mid-production.
func (c *charger) tick() error {
	c.total++
	c.sinceCheck++
	if c.sinceCheck >= 4096 {
		c.sinceCheck = 0
		return opErr(c.op, c.ctx.Cluster.CheckBudget(c.total))
	}
	return nil
}

// commit charges everything this attempt produced; the task runner invokes
// it exactly once, from the winning attempt.
func (c *charger) commit() error {
	if c.total == 0 {
		return nil
	}
	return opErr(c.op, c.ctx.Cluster.ChargeTuples(c.total))
}

func shuffleByKeys(ctx *Context, parts [][]value.Row, keys []plan.Expr) ([][]value.Row, error) {
	p := ctx.Cluster.Partitions()
	// The destination function runs concurrently across source partitions;
	// record the first evaluation error under a lock.
	var (
		mu      sync.Mutex
		evalErr error
	)
	ec := ctx.EvalCtx()
	out, err := ctx.Cluster.ShuffleByObs(taskObs(ctx), parts, func(r value.Row) int {
		kv, err := evalKeys(ec, keys, r)
		if err != nil {
			mu.Lock()
			if evalErr == nil {
				evalErr = err
			}
			mu.Unlock()
			return 0
		}
		return int(hashVals(kv) % uint64(p))
	})
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

func runCross(ctx *Context, c *plan.Cross) (*Relation, error) {
	return runCrossWith(ctx, c, nil)
}

func runCrossWith(ctx *Context, c *plan.Cross, proj *projectSpec) (*Relation, error) {
	left, err := Run(ctx, c.L)
	if err != nil {
		return nil, err
	}
	right, err := Run(ctx, c.R)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("join")()

	// Broadcast the smaller side (by rows); the bigger side stays in place.
	broadcastRight := right.NumRows() <= left.NumRows()
	var big, small *Relation
	if broadcastRight {
		big, small = left, right
	} else {
		big, small = right, left
	}
	smallParts, err := ctx.Cluster.BroadcastObs(taskObs(ctx), small.Parts)
	if err != nil {
		return nil, err
	}

	out := make([][]value.Row, ctx.Cluster.Partitions())
	ec := ctx.EvalCtx()
	err = ctx.Cluster.ParallelTasks("cross join", taskObs(ctx), func(part, _ int) (func() error, error) {
		var rows []value.Row
		charge := newCharger(ctx, "cross join")
		for _, br := range big.Parts[part] {
			for _, sr := range smallParts[part] {
				nr := make(value.Row, 0, len(c.Out))
				if broadcastRight {
					nr = append(nr, br...)
					nr = append(nr, sr...)
				} else {
					nr = append(nr, sr...)
					nr = append(nr, br...)
				}
				keep := true
				for _, res := range c.Residual {
					v, err := res.Eval(ec, nr)
					if err != nil {
						return nil, err
					}
					if !(v.Kind == value.KindBool && v.B) {
						keep = false
						break
					}
				}
				if keep {
					emitted, err := proj.emit(ec, nr)
					if err != nil {
						return nil, err
					}
					rows = append(rows, emitted)
					if err := charge.tick(); err != nil {
						return nil, err
					}
				}
			}
		}
		return func() error {
			out[part] = rows
			return charge.commit()
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: c.Out, Parts: out}
	if proj != nil {
		rel.Schema = proj.out
	}
	return rel, nil
}
