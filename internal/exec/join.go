package exec

import (
	"sync"

	"relalg/internal/plan"
	"relalg/internal/value"
)

// keyStrings renders join/group key expressions for partitioning-property
// comparison.
func keyStrings(keys []plan.Expr) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// evalKeys evaluates key expressions against a row.
func evalKeys(keys []plan.Expr, row value.Row) ([]value.Value, error) {
	out := make([]value.Value, len(keys))
	for i, k := range keys {
		v, err := k.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func hashVals(vals []value.Value) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range vals {
		h ^= v.Hash()
		h *= prime64
	}
	return h
}

// valsEqual compares key tuples with SQL semantics (numeric kinds compare by
// value; NULL equals NULL for grouping purposes).
func valsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNumeric() && b[i].IsNumeric() {
			x, _ := a[i].AsDouble()
			y, _ := b[i].AsDouble()
			if x != y {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// projectSpec is a projection fused into a join: each surviving
// concatenated row is transformed through exprs before materializing.
type projectSpec struct {
	exprs []plan.Expr
	out   plan.Schema
}

// emit applies the fused projection (if any) to a concatenated row.
func (p *projectSpec) emit(concat value.Row) (value.Row, error) {
	if p == nil {
		return concat, nil
	}
	out := make(value.Row, len(p.exprs))
	for i, e := range p.exprs {
		v, err := e.Eval(concat)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func runJoin(ctx *Context, j *plan.Join) (*Relation, error) {
	return runJoinWith(ctx, j, nil)
}

func runJoinWith(ctx *Context, j *plan.Join, proj *projectSpec) (*Relation, error) {
	left, err := Run(ctx, j.L)
	if err != nil {
		return nil, err
	}
	right, err := Run(ctx, j.R)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("join")()

	lkeyStr := keyStrings(j.LKeys)
	rkeyStr := keyStrings(j.RKeys)

	// Shuffle each side unless it is already hash-partitioned on its join
	// keys (or everything is on a single partition already).
	lparts := left.Parts
	if !left.Single && !sameKeys(left.HashKeys, lkeyStr) {
		lparts, err = shuffleByKeys(ctx, left.Parts, j.LKeys)
		if err != nil {
			return nil, err
		}
	}
	rparts := right.Parts
	bothSingle := left.Single && right.Single
	if !bothSingle {
		if left.Single {
			// The left side lives on one partition; bring the right side
			// there rather than shuffling (cheaper for tiny left sides is
			// the reverse, but correctness first: co-locate on partitions).
			lparts, err = shuffleByKeys(ctx, left.Parts, j.LKeys)
			if err != nil {
				return nil, err
			}
		}
		if !sameKeys(right.HashKeys, rkeyStr) || right.Single {
			rparts, err = shuffleByKeys(ctx, right.Parts, j.RKeys)
			if err != nil {
				return nil, err
			}
		}
	}

	out := make([][]value.Row, ctx.Cluster.Partitions())
	err = ctx.Cluster.Parallel(func(part int) error {
		// Build on the smaller side of this partition.
		lrows, rrows := lparts[part], rparts[part]
		buildLeft := len(lrows) <= len(rrows)

		type bucket struct {
			keys []value.Value
			row  value.Row
		}
		table := map[uint64][]bucket{}
		buildRows, probeRows := lrows, rrows
		buildKeys, probeKeys := j.LKeys, j.RKeys
		if !buildLeft {
			buildRows, probeRows = rrows, lrows
			buildKeys, probeKeys = j.RKeys, j.LKeys
		}
		for _, r := range buildRows {
			kv, err := evalKeys(buildKeys, r)
			if err != nil {
				return err
			}
			h := hashVals(kv)
			table[h] = append(table[h], bucket{keys: kv, row: r})
		}
		var rows []value.Row
		charge := newCharger(ctx)
		for _, pr := range probeRows {
			kv, err := evalKeys(probeKeys, pr)
			if err != nil {
				return err
			}
			for _, b := range table[hashVals(kv)] {
				if !valsEqual(kv, b.keys) {
					continue
				}
				nr := make(value.Row, 0, len(j.Out))
				if buildLeft {
					nr = append(nr, b.row...)
					nr = append(nr, pr...)
				} else {
					nr = append(nr, pr...)
					nr = append(nr, b.row...)
				}
				keep := true
				for _, res := range j.Residual {
					v, err := res.Eval(nr)
					if err != nil {
						return err
					}
					if !(v.Kind == value.KindBool && v.B) {
						keep = false
						break
					}
				}
				if keep {
					emitted, err := proj.emit(nr)
					if err != nil {
						return err
					}
					rows = append(rows, emitted)
					if err := charge.tick(); err != nil {
						return err
					}
				}
			}
		}
		out[part] = rows
		return charge.flush()
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: j.Out, Parts: out, HashKeys: lkeyStr}
	if proj != nil {
		// The projection invalidates the key-expression column indexes.
		rel.Schema = proj.out
		rel.HashKeys = nil
	}
	return rel, nil
}

// charger batches intermediate-tuple accounting so the budget guard fires
// while a runaway join is still producing, not after it has materialized
// everything (the mechanism behind the paper's "Fail" entries).
type charger struct {
	ctx     *Context
	pending int64
}

func newCharger(ctx *Context) *charger { return &charger{ctx: ctx} }

func (c *charger) tick() error {
	c.pending++
	if c.pending >= 4096 {
		return c.flush()
	}
	return nil
}

func (c *charger) flush() error {
	if c.pending == 0 {
		return nil
	}
	n := c.pending
	c.pending = 0
	return c.ctx.Cluster.ChargeTuples(n)
}

func shuffleByKeys(ctx *Context, parts [][]value.Row, keys []plan.Expr) ([][]value.Row, error) {
	p := ctx.Cluster.Partitions()
	// The destination function runs concurrently across source partitions;
	// record the first evaluation error under a lock.
	var (
		mu      sync.Mutex
		evalErr error
	)
	out, err := ctx.Cluster.ShuffleBy(parts, func(r value.Row) int {
		kv, err := evalKeys(keys, r)
		if err != nil {
			mu.Lock()
			if evalErr == nil {
				evalErr = err
			}
			mu.Unlock()
			return 0
		}
		return int(hashVals(kv) % uint64(p))
	})
	if err != nil {
		return nil, err
	}
	mu.Lock()
	defer mu.Unlock()
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

func runCross(ctx *Context, c *plan.Cross) (*Relation, error) {
	return runCrossWith(ctx, c, nil)
}

func runCrossWith(ctx *Context, c *plan.Cross, proj *projectSpec) (*Relation, error) {
	left, err := Run(ctx, c.L)
	if err != nil {
		return nil, err
	}
	right, err := Run(ctx, c.R)
	if err != nil {
		return nil, err
	}
	defer ctx.Timings.Track("join")()

	// Broadcast the smaller side (by rows); the bigger side stays in place.
	broadcastRight := right.NumRows() <= left.NumRows()
	var big, small *Relation
	if broadcastRight {
		big, small = left, right
	} else {
		big, small = right, left
	}
	smallParts, err := ctx.Cluster.Broadcast(small.Parts)
	if err != nil {
		return nil, err
	}

	out := make([][]value.Row, ctx.Cluster.Partitions())
	err = ctx.Cluster.Parallel(func(part int) error {
		var rows []value.Row
		charge := newCharger(ctx)
		for _, br := range big.Parts[part] {
			for _, sr := range smallParts[part] {
				nr := make(value.Row, 0, len(c.Out))
				if broadcastRight {
					nr = append(nr, br...)
					nr = append(nr, sr...)
				} else {
					nr = append(nr, sr...)
					nr = append(nr, br...)
				}
				keep := true
				for _, res := range c.Residual {
					v, err := res.Eval(nr)
					if err != nil {
						return err
					}
					if !(v.Kind == value.KindBool && v.B) {
						keep = false
						break
					}
				}
				if keep {
					emitted, err := proj.emit(nr)
					if err != nil {
						return err
					}
					rows = append(rows, emitted)
					if err := charge.tick(); err != nil {
						return err
					}
				}
			}
		}
		out[part] = rows
		return charge.flush()
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: c.Out, Parts: out}
	if proj != nil {
		rel.Schema = proj.out
	}
	return rel, nil
}
