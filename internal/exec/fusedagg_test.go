package exec

import (
	"testing"

	"relalg/internal/builtins"
	"relalg/internal/catalog"
	"relalg/internal/linalg"
	"relalg/internal/plan"
	"relalg/internal/types"
	"relalg/internal/value"
)

func outerSumCall(t *testing.T) plan.AggCall {
	t.Helper()
	spec, _ := builtins.LookupAgg("sum")
	fn, _ := builtins.Lookup("outer_product")
	vecT := types.TVector(types.KnownDim(2))
	input := &plan.Call{
		Fn:   fn,
		Args: []plan.Expr{col(0, vecT), col(0, vecT)},
		T:    types.TMatrix(types.KnownDim(2), types.KnownDim(2)),
	}
	return plan.AggCall{Spec: spec, Input: input, T: input.T}
}

func TestFusedOfDetection(t *testing.T) {
	call := outerSumCall(t)
	if fusedOf(call) != fusedOuterSum {
		t.Fatal("SUM(outer_product) not detected")
	}
	// COUNT never fuses.
	cnt, _ := builtins.LookupAgg("count")
	if fusedOf(plan.AggCall{Spec: cnt, Input: call.Input}) != fusedNone {
		t.Fatal("COUNT misfused")
	}
	// SUM of a plain column never fuses.
	sum, _ := builtins.LookupAgg("sum")
	if fusedOf(plan.AggCall{Spec: sum, Input: col(0, types.TDouble)}) != fusedNone {
		t.Fatal("plain SUM misfused")
	}
	// SUM(matrix_multiply) fuses.
	mm, _ := builtins.Lookup("matrix_multiply")
	mcall := &plan.Call{Fn: mm, Args: []plan.Expr{col(0, types.TMatrix(types.UnknownDim, types.UnknownDim)), col(0, types.TMatrix(types.UnknownDim, types.UnknownDim))}}
	if fusedOf(plan.AggCall{Spec: sum, Input: mcall}) != fusedMatMulSum {
		t.Fatal("SUM(matrix_multiply) not detected")
	}
}

func TestFusedOuterSumMatchesUnfused(t *testing.T) {
	call := outerSumCall(t)
	rows := []value.Row{
		{value.Vector(linalg.VectorOf(1, 2))},
		{value.Vector(linalg.VectorOf(3, -1))},
		{value.Vector(linalg.VectorOf(0, 5))},
	}
	// Fused path.
	states := newStates([]plan.AggCall{call}, true)
	fused, ok := states[0].(*fusedSumState)
	if !ok {
		t.Fatalf("state is %T, want fused", states[0])
	}
	for _, r := range rows {
		if err := stepStates(nil, states, []plan.AggCall{call}, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fused.Final()
	if err != nil {
		t.Fatal(err)
	}
	// Unfused reference.
	ref := call.Spec.New()
	for _, r := range rows {
		v, err := call.Input.Eval(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Step(v); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Mat.EqualApprox(want.Mat, 1e-12) {
		t.Fatalf("fused %v != unfused %v", got.Mat, want.Mat)
	}
}

func TestFusedSumEmptyIsNull(t *testing.T) {
	call := outerSumCall(t)
	states := newStates([]plan.AggCall{call}, true)
	v, err := states[0].Final()
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull() {
		t.Fatalf("empty fused SUM = %v, want NULL", v)
	}
}

func TestFusedSumMerge(t *testing.T) {
	call := outerSumCall(t)
	a := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	b := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	_ = a.stepFused(nil, value.Row{value.Vector(linalg.VectorOf(1, 0))})
	_ = b.stepFused(nil, value.Row{value.Vector(linalg.VectorOf(0, 2))})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Final()
	want, _ := linalg.MatrixFromRows([][]float64{{1, 0}, {0, 4}})
	if !got.Mat.Equal(want) {
		t.Fatalf("merged = %v", got.Mat)
	}
	// Merging an empty state is a no-op.
	if err := a.Merge(newStates([]plan.AggCall{call}, true)[0]); err != nil {
		t.Fatal(err)
	}
	// Merging into an empty state adopts the other side.
	c := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	got2, _ := c.Final()
	if !got2.Mat.Equal(want) {
		t.Fatalf("adopted = %v", got2.Mat)
	}
}

func TestFusedSumNullInputsSkipped(t *testing.T) {
	call := outerSumCall(t)
	st := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	if err := st.stepFused(nil, value.Row{value.Null()}); err != nil {
		t.Fatal(err)
	}
	if st.count != 0 {
		t.Fatal("null row counted")
	}
	if err := st.stepFused(nil, value.Row{value.Vector(linalg.VectorOf(1, 1))}); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Final()
	want, _ := linalg.MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if !got.Mat.Equal(want) {
		t.Fatalf("after null skip = %v", got.Mat)
	}
}

func TestFusedSumShapeError(t *testing.T) {
	call := outerSumCall(t)
	st := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	_ = st.stepFused(nil, value.Row{value.Vector(linalg.VectorOf(1, 2))})
	if err := st.stepFused(nil, value.Row{value.Vector(linalg.VectorOf(1, 2, 3))}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

// TestProjectionFusionMatchesUnfused compares a fused Project-over-Join with
// the manually staged equivalent.
func TestProjectionFusionMatchesUnfused(t *testing.T) {
	tables := memSource{}
	ctx := testCtx(tables)
	tables["l"] = intTable(ctx, 20)
	tables["r"] = intTable(ctx, 20)
	l := scanNode("l", 20, catalog.Column{Name: "a", Type: types.TInt}, catalog.Column{Name: "b", Type: types.TInt})
	r := scanNode("r", 20, catalog.Column{Name: "c", Type: types.TInt}, catalog.Column{Name: "d", Type: types.TInt})
	join := joinNode(l, r, 0, 0)
	proj := &plan.Project{
		Input: join,
		Exprs: []plan.Expr{
			&plan.Binary{Op: "+", Kind: plan.BinArith, L: col(1, types.TInt), R: col(3, types.TInt), T: types.TInt},
		},
		Out: plan.Schema{{Name: "s", T: types.TInt}},
	}
	rel, err := Run(ctx, proj)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.String() != "(s INTEGER)" {
		t.Fatalf("fused schema %s", rel.Schema)
	}
	var total int64
	for _, row := range rel.Rows() {
		if len(row) != 1 {
			t.Fatalf("row width %d (fusion must emit projected rows)", len(row))
		}
		total += row[0].I
	}
	// Sum of b+d over the 20 key-matched pairs: 2 * sum(i%5 for i<20).
	want := int64(2 * (0 + 1 + 2 + 3 + 4) * 4)
	if total != want {
		t.Fatalf("total %d, want %d", total, want)
	}
}

func TestFusedSumStepUnfusedPath(t *testing.T) {
	// The generic Step path (fed pre-computed matrices) must agree with
	// stepFused; the distributed merge path can deliver values this way.
	call := outerSumCall(t)
	st := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	if err := st.Step(value.Null()); err != nil {
		t.Fatal(err)
	}
	m1, _ := linalg.MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	m2, _ := linalg.MatrixFromRows([][]float64{{0, 2}, {3, 0}})
	if err := st.Step(value.Matrix(m1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Step(value.Matrix(m2)); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Final()
	want, _ := linalg.MatrixFromRows([][]float64{{1, 2}, {3, 1}})
	if !got.Mat.Equal(want) {
		t.Fatalf("step path sum = %v", got.Mat)
	}
	if err := st.Step(value.Int(1)); err == nil {
		t.Fatal("non-matrix Step accepted")
	}
	// Step must not mutate its first input (it clones).
	fresh := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	_ = fresh.Step(value.Matrix(m1))
	_ = fresh.Step(value.Matrix(m2))
	if m1.At(0, 1) != 0 {
		t.Fatal("Step aliased its first input")
	}
	// Merging with a foreign state type errors.
	sum, _ := builtins.LookupAgg("sum")
	if err := fresh.Merge(sum.New()); err == nil {
		t.Fatal("merge with plain sum state accepted")
	}
}

func TestFusedMatMulSum(t *testing.T) {
	spec, _ := builtins.LookupAgg("sum")
	mm, _ := builtins.Lookup("matrix_multiply")
	mt := types.TMatrix(types.KnownDim(2), types.KnownDim(2))
	call := plan.AggCall{
		Spec:  spec,
		Input: &plan.Call{Fn: mm, Args: []plan.Expr{col(0, mt), col(1, mt)}, T: mt},
		T:     mt,
	}
	st := newStates([]plan.AggCall{call}, true)[0].(*fusedSumState)
	id := linalg.Identity(2)
	two := id.Scale(2)
	if err := st.stepFused(nil, value.Row{value.Matrix(id), value.Matrix(two)}); err != nil {
		t.Fatal(err)
	}
	if err := st.stepFused(nil, value.Row{value.Matrix(two), value.Matrix(two)}); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Final()
	if !got.Mat.Equal(id.Scale(6)) {
		t.Fatalf("fused matmul sum = %v", got.Mat)
	}
	// Kind errors.
	if err := st.stepFused(nil, value.Row{value.Int(1), value.Matrix(id)}); err == nil {
		t.Fatal("non-matrix operand accepted")
	}
}

func TestValsEqualCornerCases(t *testing.T) {
	if valsEqual([]value.Value{value.Int(1)}, []value.Value{value.Int(1), value.Int(2)}) {
		t.Fatal("length mismatch equal")
	}
	if !valsEqual([]value.Value{value.Null()}, []value.Value{value.Null()}) {
		t.Fatal("NULL group keys must match")
	}
	if valsEqual([]value.Value{value.String_("a")}, []value.Value{value.String_("b")}) {
		t.Fatal("different strings equal")
	}
	if !valsEqual([]value.Value{value.Int(2)}, []value.Value{value.Double(2)}) {
		t.Fatal("numeric cross-kind keys must match")
	}
}

func TestCompareForSortNulls(t *testing.T) {
	if c, err := compareForSort(value.Null(), value.Null()); err != nil || c != 0 {
		t.Fatalf("null/null = %d, %v", c, err)
	}
	if c, err := compareForSort(value.Null(), value.Int(1)); err != nil || c != -1 {
		t.Fatalf("null/1 = %d, %v", c, err)
	}
	if c, err := compareForSort(value.Int(1), value.Null()); err != nil || c != 1 {
		t.Fatalf("1/null = %d, %v", c, err)
	}
	if c, err := compareForSort(value.Int(1), value.Int(2)); err != nil || c != -1 {
		t.Fatalf("1/2 = %d, %v", c, err)
	}
}
