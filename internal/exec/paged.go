package exec

import (
	"errors"
	"fmt"

	"relalg/internal/plan"
	"relalg/internal/value"
)

// This file is the executor's streaming path over persistent storage: when
// the table source exposes paged tables, the fused scan→filter→project
// pipeline pulls one page at a time through the buffer pool instead of
// materializing whole partitions. In batch mode each page decodes straight
// into value.Col windows, so the stored data never takes row form unless an
// expression's scalar fallback asks for a row.

// PagedTable is one stored table the executor can stream page by page.
type PagedTable interface {
	// Parts is the stored partition count.
	Parts() int
	// ScanPartRows streams one partition's rows a page at a time.
	ScanPartRows(part int, fn func(rows []value.Row) error) error
	// ScanPartBatches streams one partition's pages as columnar batches.
	ScanPartBatches(part int, fn func(b *value.Batch) error) error
}

// PagedSource is optionally implemented by Context.Tables. TablePager
// returns (nil, nil) when the source has no paged storage at all; an error
// is deferred to the materialized path, which will surface it.
type PagedSource interface {
	TablePager(name string) (PagedTable, error)
}

// pagedScan resolves the paged table behind a scan when streaming is
// possible: the table source is paged and the stored partitioning matches
// the cluster shape. A mismatched layout needs the materialized re-spread
// path, and a lookup error is left for it to report.
func pagedScan(ctx *Context, s *plan.Scan) PagedTable {
	ps, ok := ctx.Tables.(PagedSource)
	if !ok {
		return nil
	}
	pt, err := ps.TablePager(s.Table.Name)
	if err != nil || pt == nil {
		return nil
	}
	if pt.Parts() != ctx.Cluster.Partitions() {
		return nil
	}
	return pt
}

// errPagedStop ends a page scan early (a pushed-down LIMIT is satisfied).
var errPagedStop = errors.New("exec: stop paged scan")

// runPipelinePaged executes a fused Project?(Filter*(Scan)) chain by
// streaming pages: each partition holds one pinned page at a time, so the
// working set is bounded by the buffer pool, not the table size.
func runPipelinePaged(ctx *Context, sp *plan.Pipeline, pt PagedTable, limit int) (*Relation, error) {
	defer ctx.Timings.Track("pipeline")()
	out := make([][]value.Row, ctx.Cluster.Partitions())
	ec := ctx.EvalCtx()
	err := ctx.Cluster.ParallelTasks("pipeline", taskObs(ctx), func(part, _ int) (func() error, error) {
		var rows []value.Row
		var err error
		if ctx.BatchSize > 0 {
			rows, err = pagedBatchPart(ec, sp, pt, part, limit)
		} else {
			rows, err = pagedRowPart(ec, sp, pt, part)
		}
		if err != nil {
			return nil, err
		}
		return func() error {
			out[part] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rel := &Relation{Schema: sp.Out, Parts: out}
	if sp.Exprs == nil {
		rel.HashKeys = scanHashKeys(sp.Scan)
	}
	if err := ctx.Cluster.ChargeTuples(int64(rel.NumRows())); err != nil {
		return nil, opErr("pipeline", err)
	}
	return rel, nil
}

// pagedRowPart is the row-at-a-time pipeline body over one partition's
// pages. Decoded page rows own their storage, so unprojected survivors are
// kept as-is.
func pagedRowPart(ec *plan.EvalCtx, sp *plan.Pipeline, pt PagedTable, part int) ([]value.Row, error) {
	var arena rowArena
	var out []value.Row
	err := pt.ScanPartRows(part, func(page []value.Row) error {
		for _, r := range page {
			keep := true
			for _, pred := range sp.Filters {
				v, err := pred.Eval(ec, r)
				if err != nil {
					return err
				}
				if v.Kind != value.KindBool || !v.B {
					keep = false
					break
				}
			}
			if !keep {
				continue
			}
			if sp.Exprs == nil {
				out = append(out, r)
				continue
			}
			nr := arena.alloc(len(sp.Exprs))
			for i, e := range sp.Exprs {
				v, err := e.Eval(ec, r)
				if err != nil {
					return err
				}
				nr[i] = v
			}
			out = append(out, nr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pagedBatchPart is the vectorized pipeline body over one partition's pages.
// The window is the page itself: its decoded columnar batch feeds EvalVec
// directly, selection vectors thread the filters, and only surviving lanes
// materialize as rows.
func pagedBatchPart(ec *plan.EvalCtx, sp *plan.Pipeline, pt PagedTable, part, limit int) ([]value.Row, error) {
	var (
		out   []value.Row
		arena rowArena
		sbuf  []int32
	)
	var cols []*value.Col
	if sp.Exprs != nil {
		cols = make([]*value.Col, len(sp.Exprs))
	}
	err := pt.ScanPartBatches(part, func(b *value.Batch) error {
		if limit >= 0 && len(out) >= limit {
			return errPagedStop
		}
		src := pageSource{b: b}
		n := b.N
		sel := []int32(nil) // nil = every lane live
		for _, pred := range sp.Filters {
			col, err := plan.EvalVec(ec, pred, &src, sel)
			if err != nil {
				return err
			}
			sbuf = filterSel(col, n, sel, sbuf)
			sel = sbuf
			if len(sel) == 0 {
				return nil
			}
		}
		if limit >= 0 {
			remaining := limit - len(out)
			if sel == nil && n > remaining {
				sel = allSel(sbuf, n)[:remaining]
			} else if sel != nil && len(sel) > remaining {
				sel = sel[:remaining]
			}
		}
		emitCols := cols
		width := len(sp.Exprs)
		if sp.Exprs == nil {
			// No projection: emit the page's own columns.
			emitCols = make([]*value.Col, len(b.Cols))
			for j := range b.Cols {
				emitCols[j] = &b.Cols[j]
			}
			width = len(b.Cols)
		} else {
			for j, e := range sp.Exprs {
				c, err := plan.EvalVec(ec, e, &src, sel)
				if err != nil {
					return err
				}
				emitCols[j] = c
			}
		}
		emit := func(i int) {
			nr := arena.alloc(width)
			for j := range emitCols {
				nr[j] = emitCols[j].Value(i)
			}
			out = append(out, nr)
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				emit(i)
			}
		} else {
			for _, i := range sel {
				emit(int(i))
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, errPagedStop) {
		return nil, err
	}
	return out, nil
}

// pageSource adapts a decoded page batch to plan.BatchSource.
type pageSource struct {
	b *value.Batch
}

// BatchLen implements plan.BatchSource.
func (s *pageSource) BatchLen() int { return s.b.N }

// BatchCol implements plan.BatchSource.
func (s *pageSource) BatchCol(idx int) (*value.Col, error) {
	if idx < 0 || idx >= len(s.b.Cols) {
		return nil, fmt.Errorf("exec: column index %d out of range for page of %d columns", idx, len(s.b.Cols))
	}
	return &s.b.Cols[idx], nil
}

// BatchRow implements plan.BatchSource (scalar fallback).
func (s *pageSource) BatchRow(i int) value.Row {
	r := make(value.Row, len(s.b.Cols))
	for j := range s.b.Cols {
		r[j] = s.b.Cols[j].Value(i)
	}
	return r
}
