package cluster

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"relalg/internal/value"
)

func testCluster(nodes, perNode int, serialize bool) *Cluster {
	return New(Config{Nodes: nodes, PartitionsPerNode: perNode, SerializeShuffles: serialize})
}

func intRows(n int) []value.Row {
	rows := make([]value.Row, n)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.Int(int64(i % 7))}
	}
	return rows
}

func sortedInts(rows []value.Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[0].I
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestConfigPartitions(t *testing.T) {
	if got := (Config{Nodes: 10, PartitionsPerNode: 2}).Partitions(); got != 20 {
		t.Fatalf("partitions = %d", got)
	}
	if got := (Config{}).Partitions(); got != 1 {
		t.Fatalf("degenerate partitions = %d", got)
	}
	if New(Config{}).Partitions() != 1 {
		t.Fatal("New should normalize zero config")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	c := testCluster(3, 2, true)
	rows := intRows(100)
	parts := c.ScatterRoundRobin(rows)
	if len(parts) != 6 {
		t.Fatalf("parts = %d", len(parts))
	}
	back := c.Gather(parts)
	if len(back) != 100 {
		t.Fatalf("gathered %d rows", len(back))
	}
	got := sortedInts(back)
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("row %d missing (got %d)", i, v)
		}
	}
}

func TestScatterHashCoLocates(t *testing.T) {
	c := testCluster(4, 1, false)
	parts := c.ScatterHash(intRows(200), []int{1})
	// All rows with the same key column must be in the same partition.
	keyPart := map[int64]int{}
	for p, rows := range parts {
		for _, r := range rows {
			k := r[1].I
			if prev, ok := keyPart[k]; ok && prev != p {
				t.Fatalf("key %d split across partitions %d and %d", k, prev, p)
			}
			keyPart[k] = p
		}
	}
}

func TestShufflePreservesRowsAndCoLocates(t *testing.T) {
	for _, serialize := range []bool{true, false} {
		c := testCluster(3, 2, serialize)
		rows := intRows(150)
		parts := c.ScatterRoundRobin(rows)
		shuffled, err := c.Shuffle(parts, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		back := c.Gather(shuffled)
		if len(back) != 150 {
			t.Fatalf("serialize=%v: shuffle lost rows: %d", serialize, len(back))
		}
		keyPart := map[int64]int{}
		for p, prows := range shuffled {
			for _, r := range prows {
				k := r[1].I
				if prev, ok := keyPart[k]; ok && prev != p {
					t.Fatalf("key %d split", k)
				}
				keyPart[k] = p
			}
		}
		if c.Stats().Snapshot().ShuffleRounds != 1 {
			t.Fatal("shuffle round not counted")
		}
		if c.Stats().Snapshot().TuplesShuffled == 0 {
			t.Fatal("no tuples counted as shuffled")
		}
		if serialize && c.Stats().Snapshot().BytesShuffled == 0 {
			t.Fatal("no bytes charged with serialization on")
		}
	}
}

func TestShuffleByCustomDest(t *testing.T) {
	c := testCluster(2, 2, false)
	parts := c.ScatterRoundRobin(intRows(40))
	out, err := c.ShuffleBy(parts, func(r value.Row) int { return int(r[0].I) })
	if err != nil {
		t.Fatal(err)
	}
	for p, rows := range out {
		for _, r := range rows {
			if int(r[0].I)%4 != p {
				t.Fatalf("row %d landed on partition %d", r[0].I, p)
			}
		}
	}
	// Negative destinations wrap.
	out, err = c.ShuffleBy(parts, func(r value.Row) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gather(out)) != 40 {
		t.Fatal("negative destination lost rows")
	}
}

func TestBroadcast(t *testing.T) {
	for _, serialize := range []bool{true, false} {
		c := testCluster(2, 2, serialize)
		parts := c.ScatterRoundRobin(intRows(10))
		bc, err := c.Broadcast(parts)
		if err != nil {
			t.Fatal(err)
		}
		for p, rows := range bc {
			if len(rows) != 10 {
				t.Fatalf("partition %d has %d rows, want all 10", p, len(rows))
			}
		}
		if c.Stats().Snapshot().BroadcastRounds != 1 {
			t.Fatal("broadcast round not counted")
		}
	}
}

func TestTupleBudget(t *testing.T) {
	c := New(Config{Nodes: 1, PartitionsPerNode: 1, MaxIntermediateTuples: 100})
	if err := c.ChargeTuples(50); err != nil {
		t.Fatal(err)
	}
	if err := c.ChargeTuples(50); err != nil {
		t.Fatal(err)
	}
	err := c.ChargeTuples(1)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("error = %v, want ErrResourceExhausted", err)
	}
	c.ResetBudget()
	if err := c.ChargeTuples(100); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRunsAllPartitions(t *testing.T) {
	c := testCluster(3, 3, false)
	seen := make([]bool, c.Partitions())
	err := c.Parallel(func(p int) error {
		seen[p] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range seen {
		if !s {
			t.Fatalf("partition %d not visited", p)
		}
	}
	wantErr := errors.New("boom")
	err = c.Parallel(func(p int) error {
		if p == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("error = %v", err)
	}
}

func TestPropShuffleIsPermutation(t *testing.T) {
	f := func(seed int64, nodes, rowsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		c := testCluster(int(nodes%5)+1, int(nodes%3)+1, seed%2 == 0)
		n := int(rowsRaw)
		rows := make([]value.Row, n)
		for i := range rows {
			rows[i] = value.Row{value.Int(int64(i)), value.Int(int64(r.Intn(10)))}
		}
		parts := c.ScatterRoundRobin(rows)
		out, err := c.Shuffle(parts, []int{1})
		if err != nil {
			return false
		}
		back := sortedInts(c.Gather(out))
		if len(back) != n {
			return false
		}
		for i, v := range back {
			if v != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkWaitModelsBandwidth(t *testing.T) {
	slow := New(Config{Nodes: 1, PartitionsPerNode: 1, NetworkBytesPerSec: 1e6})
	start := time.Now()
	slow.NetworkWait(100_000) // 0.1s at 1 MB/s
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("wait too short: %v", took)
	}
	// Infinite bandwidth and zero bytes never wait.
	fast := New(Config{Nodes: 1, PartitionsPerNode: 1})
	start = time.Now()
	fast.NetworkWait(1 << 30)
	slow.NetworkWait(0)
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("unexpected wait: %v", took)
	}
}

func TestShuffleChargesBandwidth(t *testing.T) {
	c := New(Config{Nodes: 2, PartitionsPerNode: 1, SerializeShuffles: true, NetworkBytesPerSec: 2e6})
	rows := make([]value.Row, 200)
	for i := range rows {
		rows[i] = value.Row{value.Int(int64(i)), value.String_("padding-padding-padding")}
	}
	parts := c.ScatterRoundRobin(rows)
	start := time.Now()
	if _, err := c.Shuffle(parts, []int{0}); err != nil {
		t.Fatal(err)
	}
	bytes := c.Stats().Snapshot().BytesShuffled
	if bytes == 0 {
		t.Fatal("no bytes shuffled")
	}
	// The wait should be roughly bytes / bandwidth (loose lower bound: half).
	minWait := time.Duration(float64(bytes) / 2e6 / 2 * float64(time.Second))
	if took := time.Since(start); took < minWait/2 {
		t.Fatalf("shuffle took %v, want at least ~%v for %d bytes", took, minWait, bytes)
	}
}
