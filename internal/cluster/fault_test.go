package cluster

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"relalg/internal/fault"
	"relalg/internal/linalg"
	"relalg/internal/value"
)

// expectedShuffleAccounting replays the cluster's own accounting rules over a
// round-robin layout: tuples and wire bytes for every (src, dst) chunk whose
// source partition differs from its destination.
func expectedShuffleAccounting(c *Cluster, parts [][]value.Row, keyCols []int) (tuples, bytes int64) {
	p := c.Partitions()
	for src := range parts {
		chunks := make([][]value.Row, p)
		for _, r := range parts[src] {
			d := int(value.HashRowKey(r, keyCols) % uint64(p))
			chunks[d] = append(chunks[d], r)
		}
		for dst, chunk := range chunks {
			if dst == src || len(chunk) == 0 {
				continue
			}
			tuples += int64(len(chunk))
			if c.Config().SerializeShuffles {
				bytes += int64(len(value.EncodeRows(chunk)))
			} else {
				for _, r := range chunk {
					bytes += int64(r.SizeBytes())
				}
			}
		}
	}
	return tuples, bytes
}

// TestShuffleAccountingPinned pins the exact shuffle tuple/byte counters for
// a known row layout at several partition counts, serialized and not.
func TestShuffleAccountingPinned(t *testing.T) {
	for _, tc := range []struct {
		nodes, perNode int
		serialize      bool
	}{
		{1, 1, true}, {2, 1, true}, {2, 2, true}, {3, 2, true}, {5, 2, true},
		{2, 2, false}, {3, 1, false},
	} {
		c := testCluster(tc.nodes, tc.perNode, tc.serialize)
		rows := intRows(137)
		parts := c.ScatterRoundRobin(rows)
		wantTuples, wantBytes := expectedShuffleAccounting(c, parts, []int{1})
		if _, err := c.Shuffle(parts, []int{1}); err != nil {
			t.Fatal(err)
		}
		s := c.Stats().Snapshot()
		if s.TuplesShuffled != wantTuples {
			t.Errorf("%d×%d serialize=%v: TuplesShuffled = %d, want %d",
				tc.nodes, tc.perNode, tc.serialize, s.TuplesShuffled, wantTuples)
		}
		if s.BytesShuffled != wantBytes {
			t.Errorf("%d×%d serialize=%v: BytesShuffled = %d, want %d",
				tc.nodes, tc.perNode, tc.serialize, s.BytesShuffled, wantBytes)
		}
		if s.ShuffleRounds != 1 {
			t.Errorf("ShuffleRounds = %d, want 1", s.ShuffleRounds)
		}
	}
}

// TestBroadcastAccountingPinned pins broadcast accounting: each destination
// is charged only for rows whose source partition differs from it — p-1
// remote copies of every row in total, never the destination's own rows.
func TestBroadcastAccountingPinned(t *testing.T) {
	for _, tc := range []struct {
		nodes, perNode int
		serialize      bool
		rows           int
	}{
		{2, 2, true, 10}, {3, 1, true, 17}, {5, 2, true, 41},
		{2, 2, false, 10}, {4, 1, false, 23},
	} {
		c := testCluster(tc.nodes, tc.perNode, tc.serialize)
		p := c.Partitions()
		rows := intRows(tc.rows)
		parts := c.ScatterRoundRobin(rows)

		// Expected: every destination receives all rows except its own.
		wantTuples := int64(p-1) * int64(len(rows))
		var wantBytes int64
		for src := range parts {
			if len(parts[src]) == 0 {
				continue
			}
			var per int64
			if tc.serialize {
				per = int64(len(value.EncodeRows(parts[src])))
			} else {
				for _, r := range parts[src] {
					per += int64(r.SizeBytes())
				}
			}
			wantBytes += per * int64(p-1)
		}

		bc, err := c.Broadcast(parts)
		if err != nil {
			t.Fatal(err)
		}
		for dst, got := range bc {
			if len(got) != len(rows) {
				t.Fatalf("partition %d has %d rows, want %d", dst, len(got), len(rows))
			}
		}
		s := c.Stats().Snapshot()
		if s.TuplesShuffled != wantTuples {
			t.Errorf("%d×%d serialize=%v: broadcast TuplesShuffled = %d, want %d",
				tc.nodes, tc.perNode, tc.serialize, s.TuplesShuffled, wantTuples)
		}
		if s.BytesShuffled != wantBytes {
			t.Errorf("%d×%d serialize=%v: broadcast BytesShuffled = %d, want %d",
				tc.nodes, tc.perNode, tc.serialize, s.BytesShuffled, wantBytes)
		}
		if s.BroadcastRounds != 1 {
			t.Errorf("BroadcastRounds = %d, want 1", s.BroadcastRounds)
		}
	}
}

// TestRoundsCountCompletedExchangesOnly asserts the satellite bugfix: an
// exchange that fails (here: permanently crashed delivery tasks) must not
// count as a completed round.
func TestRoundsCountCompletedExchangesOnly(t *testing.T) {
	cfg := Config{Nodes: 2, PartitionsPerNode: 2, SerializeShuffles: true,
		Faults: fault.Config{Seed: 3, PermanentProb: 1, RetryBackoff: -1}}
	c := New(cfg)
	parts := c.ScatterRoundRobin(intRows(40))
	if _, err := c.Shuffle(parts, []int{1}); err == nil {
		t.Fatal("shuffle under permanent faults should fail")
	}
	if _, err := c.Broadcast(parts); err == nil {
		t.Fatal("broadcast under permanent faults should fail")
	}
	s := c.Stats().Snapshot()
	if s.ShuffleRounds != 0 || s.BroadcastRounds != 0 {
		t.Fatalf("aborted exchanges counted as rounds: shuffle=%d broadcast=%d",
			s.ShuffleRounds, s.BroadcastRounds)
	}
	if s.TuplesShuffled != 0 || s.BytesShuffled != 0 {
		t.Fatalf("aborted exchanges charged traffic: tuples=%d bytes=%d",
			s.TuplesShuffled, s.BytesShuffled)
	}
}

// TestBroadcastDeepCopiesRemoteRows asserts the aliasing satellite: in
// non-serialized mode a destination's remote copies must not share vector
// backing storage with the source rows or with other destinations.
func TestBroadcastDeepCopiesRemoteRows(t *testing.T) {
	c := testCluster(2, 2, false)
	vec := value.Vector(linalg.VectorOf(1, 2, 3))
	src := []value.Row{{value.Int(0), vec}}
	parts := make([][]value.Row, c.Partitions())
	parts[0] = src
	bc, err := c.Broadcast(parts)
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1 received a remote copy; scribble on its vector.
	bc[1][0][1].Vec.Data[0] = 99
	if got := src[0][1].Vec.Data[0]; got != 1 {
		t.Fatalf("source row mutated through partition 1's copy: %v", got)
	}
	if got := bc[2][0][1].Vec.Data[0]; got != 1 {
		t.Fatalf("partition 2 shares backing data with partition 1: %v", got)
	}
	if got := bc[0][0][1].Vec.Data[0]; got != 1 {
		t.Fatalf("partition 0 (local) mutated through partition 1's copy: %v", got)
	}
}

// TestParallelRetriesTransientCrashes: with transient crashes at every
// partition, Parallel still succeeds (the final attempt is always clean) and
// the retry counters move.
func TestParallelRetriesTransientCrashes(t *testing.T) {
	cfg := Config{Nodes: 2, PartitionsPerNode: 2,
		Faults: fault.Config{Seed: 11, CrashProb: 1, MaxAttempts: 3, RetryBackoff: time.Microsecond}}
	c := New(cfg)
	var runs atomic.Int64
	seen := make([]atomic.Int64, c.Partitions())
	err := c.Parallel(func(p int) error {
		runs.Add(1)
		seen[p].Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("transient-only faults must converge: %v", err)
	}
	for p := range seen {
		if seen[p].Load() == 0 {
			t.Fatalf("partition %d never ran", p)
		}
	}
	s := c.Stats().Snapshot()
	if s.TaskRetries == 0 {
		t.Fatal("no retries counted under CrashProb=1")
	}
	if s.FaultsInjected == 0 {
		t.Fatal("no faults counted under CrashProb=1")
	}
	if runs.Load() != int64(c.Partitions()) {
		// Crash faults fire before fn runs, so each partition's fn executes
		// exactly once — on its clean final attempt.
		t.Fatalf("fn ran %d times, want %d", runs.Load(), c.Partitions())
	}
}

// TestParallelTasksCommitExactlyOnce: under heavy transient faults plus
// speculation, each partition's commit runs exactly once and results are
// identical to a fault-free run.
func TestParallelTasksCommitExactlyOnce(t *testing.T) {
	cfg := Config{Nodes: 2, PartitionsPerNode: 2,
		Faults: fault.Config{Seed: 5, CrashProb: 0.5, StragglerProb: 1, Speculate: true,
			StragglerDelay: 100 * time.Microsecond, MaxAttempts: 4, RetryBackoff: time.Microsecond}}
	c := New(cfg)
	commits := make([]atomic.Int64, c.Partitions())
	out := make([]int, c.Partitions())
	err := c.ParallelTasks("square", TaskObserver{}, func(part, attempt int) (func() error, error) {
		v := part * part
		return func() error {
			commits[part].Add(1)
			out[part] = v
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range commits {
		if got := commits[p].Load(); got != 1 {
			t.Fatalf("partition %d committed %d times, want exactly 1", p, got)
		}
		if out[p] != p*p {
			t.Fatalf("partition %d result %d, want %d", p, out[p], p*p)
		}
	}
	if c.Stats().Snapshot().SpeculativeLaunches == 0 {
		t.Fatal("no speculative launches counted under StragglerProb=1 + Speculate")
	}
}

// TestPermanentFaultSurfacesTaskError: permanent crashes exhaust retries and
// surface a wrapped TaskError naming operator, partition, and attempt.
func TestPermanentFaultSurfacesTaskError(t *testing.T) {
	cfg := Config{Nodes: 1, PartitionsPerNode: 2,
		Faults: fault.Config{Seed: 2, PermanentProb: 1, RetryBackoff: -1}}
	c := New(cfg)
	err := c.ParallelOp("hash join", func(p int) error { return nil })
	if err == nil {
		t.Fatal("permanent faults must fail the operation")
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error does not match fault.ErrInjected: %v", err)
	}
	var te *fault.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("error does not carry a fault.TaskError: %v", err)
	}
	if te.Op != "hash join" {
		t.Errorf("TaskError.Op = %q", te.Op)
	}
	if !strings.Contains(err.Error(), "hash join") || !strings.Contains(err.Error(), "attempt 0") {
		t.Errorf("message does not name operator and attempt: %q", err.Error())
	}
}

// TestShuffleUnderTransientFaultsIsIdentical: at several seeds, a shuffle
// with transient ser-de faults produces partition-for-partition identical
// rows to the fault-free shuffle, with retries observed.
func TestShuffleUnderTransientFaultsIsIdentical(t *testing.T) {
	for _, serialize := range []bool{true, false} {
		base := testCluster(3, 2, serialize)
		rows := intRows(200)
		want, err := base.Shuffle(base.ScatterRoundRobin(rows), []int{1})
		if err != nil {
			t.Fatal(err)
		}
		var sawRetry bool
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := Config{Nodes: 3, PartitionsPerNode: 2, SerializeShuffles: serialize,
				Faults: fault.Config{Seed: seed, ShuffleProb: 1, CrashProb: 0.3,
					MaxAttempts: 3, RetryBackoff: time.Microsecond}}
			fc := New(cfg)
			got, err := fc.Shuffle(fc.ScatterRoundRobin(rows), []int{1})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d serialize=%v: faulted shuffle diverged from fault-free baseline", seed, serialize)
			}
			if fc.Stats().Snapshot().TaskRetries > 0 {
				sawRetry = true
			}
		}
		if !sawRetry {
			t.Fatal("no retries observed across seeds with ShuffleProb=1")
		}
	}
}

// TestRetryObserverReceivesBackoff: the TaskObserver sees the deterministic
// backoff waits that precede re-executions.
func TestRetryObserverReceivesBackoff(t *testing.T) {
	cfg := Config{Nodes: 1, PartitionsPerNode: 2,
		Faults: fault.Config{Seed: 1, CrashProb: 1, MaxAttempts: 3, RetryBackoff: time.Microsecond}}
	c := New(cfg)
	var waited atomic.Int64
	obs := TaskObserver{RetryWait: func(d time.Duration) { waited.Add(int64(d)) }}
	err := c.ParallelTasks("op", obs, func(part, attempt int) (func() error, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if waited.Load() == 0 {
		t.Fatal("observer saw no backoff despite guaranteed retries")
	}
}

// TestCheckBudgetPeeksWithoutCharging: CheckBudget reports exhaustion but
// never consumes budget or moves counters.
func TestCheckBudgetPeeksWithoutCharging(t *testing.T) {
	c := New(Config{Nodes: 1, PartitionsPerNode: 1, MaxIntermediateTuples: 100})
	if err := c.ChargeTuples(90); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckBudget(10); err != nil {
		t.Fatalf("CheckBudget(10) at 90/100 = %v", err)
	}
	if err := c.CheckBudget(11); !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("CheckBudget(11) = %v, want ErrResourceExhausted", err)
	}
	// The peek charged nothing: a real charge of 10 still fits.
	if err := c.ChargeTuples(10); err != nil {
		t.Fatalf("charge after peek failed: %v", err)
	}
	if got := c.Stats().Snapshot().TuplesProduced; got != 100 {
		t.Fatalf("TuplesProduced = %d, want 100 (peeks must not count)", got)
	}
}
