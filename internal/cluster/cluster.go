// Package cluster simulates the shared-nothing cluster that the engine and
// all comparison baselines execute on. A cluster is N logical nodes × P
// partition slots; partitioned data is [][]value.Row with one slice per
// partition. Work runs partition-parallel on goroutines; rows that cross
// partitions during a shuffle are (by default) serialized and deserialized
// through the binary row codec so benchmarks pay a realistic network/ser-de
// cost, and every movement is counted in Stats.
//
// The cluster also enforces an intermediate-tuple budget, the mechanism that
// makes the paper's "Fail" entries reproducible: a plan that tries to
// materialize a quadratic tuple blow-up exceeds the budget and aborts.
//
// Fault tolerance: with Config.Faults enabled, every partition task (a unit
// of Parallel/ParallelTasks work, one exchange destination, one sort) runs
// under a bounded-retry loop. Tasks are compute/commit pairs — compute reads
// only its immutable input snapshot and returns a commit closure that
// installs results and charges stats exactly once — so a transiently-failed
// or speculatively-duplicated attempt can be discarded without trace, and a
// fault-injected run converges to a result bit-identical to the fault-free
// one. Permanent failures surface as fault.TaskError naming operator,
// partition, and attempt.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relalg/internal/fault"
	"relalg/internal/value"
)

// ErrResourceExhausted is returned when a plan exceeds the configured
// intermediate tuple budget (the simulated analogue of running a cluster out
// of memory/disk).
var ErrResourceExhausted = errors.New("cluster: intermediate tuple budget exhausted")

// Config sizes the simulated cluster.
type Config struct {
	// Nodes is the number of simulated machines (the paper used 10).
	Nodes int
	// PartitionsPerNode is the number of parallel slots per machine (the
	// paper's workers had 8 cores).
	PartitionsPerNode int
	// SerializeShuffles encodes/decodes rows through the binary codec on
	// every cross-partition move, charging the ser-de cost that dominates
	// distributed aggregation (Figure 4). Disable for the A3 ablation.
	SerializeShuffles bool
	// MaxIntermediateTuples aborts plans that materialize more than this
	// many tuples (0 = unlimited).
	MaxIntermediateTuples int64
	// NetworkBytesPerSec models per-link network bandwidth: every
	// destination of a shuffle or broadcast waits bytes/bandwidth before
	// its data is available (0 = infinite, no waiting). The paper's
	// Hadoop-era cluster was shuffle-bound; this knob recreates that regime
	// on in-memory hardware.
	NetworkBytesPerSec float64
	// MemoryBudgetBytes caps the bytes of operator working state (hash-join
	// tables, sort buffers, aggregation groups) one query may hold, measured
	// through the row codec's encoded sizes. Operators that would exceed it
	// spill runs to temp files and continue out-of-core instead of aborting.
	// 0 = unlimited: no governor, no spilling — the seed behaviour.
	MemoryBudgetBytes int64
	// Faults configures deterministic fault injection over partition tasks,
	// exchanges, and spill writes. The zero value disables injection and
	// retry entirely — the seed behaviour.
	Faults fault.Config
}

// DefaultConfig mirrors the paper's 10-node, 8-core setup at simulation
// scale: 10 nodes × 2 partitions = 20-way parallelism.
func DefaultConfig() Config {
	return Config{Nodes: 10, PartitionsPerNode: 2, SerializeShuffles: true}
}

// Partitions returns the total number of partition slots.
func (c Config) Partitions() int {
	p := c.Nodes * c.PartitionsPerNode
	if p < 1 {
		return 1
	}
	return p
}

// KernelWorkers returns the per-kernel goroutine budget that composes with
// partition parallelism: Parallel runs one goroutine per partition slot, so
// a linear-algebra kernel invoked inside an operator may only fan out
// GOMAXPROCS/Partitions ways before the machine is oversubscribed. Always at
// least 1 (the kernel itself still runs).
func (c Config) KernelWorkers() int {
	w := runtime.GOMAXPROCS(0) / c.Partitions()
	if w < 1 {
		return 1
	}
	return w
}

// Stats aggregates movement and volume counters across a run. All fields are
// updated atomically and safe to read concurrently.
type Stats struct {
	TuplesShuffled      atomic.Int64 // rows that crossed a partition boundary
	BytesShuffled       atomic.Int64 // encoded bytes of those rows
	TuplesProduced      atomic.Int64 // rows materialized by operators
	ShuffleRounds       atomic.Int64 // exchange operations that completed
	BroadcastRounds     atomic.Int64
	SpillEvents         atomic.Int64 // spill runs written under memory pressure
	BytesSpilled        atomic.Int64 // file bytes of those runs
	FaultsInjected      atomic.Int64 // faults the injector fired
	TaskRetries         atomic.Int64 // partition-task re-executions after transient failure
	SpeculativeLaunches atomic.Int64 // backup attempts launched against stragglers
	Replans             atomic.Int64 // join regions re-optimized mid-query on cardinality divergence
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		TuplesShuffled:      s.TuplesShuffled.Load(),
		BytesShuffled:       s.BytesShuffled.Load(),
		TuplesProduced:      s.TuplesProduced.Load(),
		ShuffleRounds:       s.ShuffleRounds.Load(),
		BroadcastRounds:     s.BroadcastRounds.Load(),
		SpillEvents:         s.SpillEvents.Load(),
		BytesSpilled:        s.BytesSpilled.Load(),
		FaultsInjected:      s.FaultsInjected.Load(),
		TaskRetries:         s.TaskRetries.Load(),
		SpeculativeLaunches: s.SpeculativeLaunches.Load(),
		Replans:             s.Replans.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	TuplesShuffled      int64
	BytesShuffled       int64
	TuplesProduced      int64
	ShuffleRounds       int64
	BroadcastRounds     int64
	SpillEvents         int64
	BytesSpilled        int64
	FaultsInjected      int64
	TaskRetries         int64
	SpeculativeLaunches int64
	Replans             int64
}

func (s StatsSnapshot) String() string {
	out := fmt.Sprintf("shuffled %d tuples (%d bytes) in %d rounds, %d broadcasts, produced %d tuples",
		s.TuplesShuffled, s.BytesShuffled, s.ShuffleRounds, s.BroadcastRounds, s.TuplesProduced)
	if s.SpillEvents > 0 {
		out += fmt.Sprintf(", spilled %d runs (%d bytes)", s.SpillEvents, s.BytesSpilled)
	}
	if s.FaultsInjected > 0 || s.TaskRetries > 0 || s.SpeculativeLaunches > 0 {
		out += fmt.Sprintf(", injected %d faults (%d retries, %d speculative launches)",
			s.FaultsInjected, s.TaskRetries, s.SpeculativeLaunches)
	}
	if s.Replans > 0 {
		out += fmt.Sprintf(", re-planned %d join regions", s.Replans)
	}
	return out
}

// Cluster is one simulated cluster instance.
type Cluster struct {
	cfg      Config
	stats    Stats
	used     atomic.Int64 // intermediate tuples charged so far
	injector *fault.Injector
}

// New creates a cluster from the config.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.PartitionsPerNode <= 0 {
		cfg.PartitionsPerNode = 1
	}
	return &Cluster{cfg: cfg, injector: fault.New(cfg.Faults)}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Partitions returns the number of partition slots.
func (c *Cluster) Partitions() int { return c.cfg.Partitions() }

// Stats exposes the movement counters.
func (c *Cluster) Stats() *Stats { return &c.stats }

// ResetBudget clears the intermediate-tuple accounting (call between
// queries).
func (c *Cluster) ResetBudget() { c.used.Store(0) }

// ChargeTuples records that n intermediate tuples were materialized; it
// fails once the configured budget is exhausted. Call it from a task's
// commit, never its compute: a charge is irrevocable, so charging from a
// retried or speculatively-duplicated attempt would double-count.
func (c *Cluster) ChargeTuples(n int64) error {
	c.stats.TuplesProduced.Add(n)
	used := c.used.Add(n)
	if c.cfg.MaxIntermediateTuples > 0 && used > c.cfg.MaxIntermediateTuples {
		return fmt.Errorf("%w: %d tuples exceeds budget %d", ErrResourceExhausted, used, c.cfg.MaxIntermediateTuples)
	}
	return nil
}

// CheckBudget reports whether charging extra more tuples would exceed the
// intermediate-tuple budget, without charging anything. Task computes use it
// to abort early; the definitive charge happens in their commit.
func (c *Cluster) CheckBudget(extra int64) error {
	if c.cfg.MaxIntermediateTuples <= 0 {
		return nil
	}
	if used := c.used.Load() + extra; used > c.cfg.MaxIntermediateTuples {
		return fmt.Errorf("%w: %d tuples exceeds budget %d", ErrResourceExhausted, used, c.cfg.MaxIntermediateTuples)
	}
	return nil
}

// SpillWriteFault is the spill write-failure injection point; the core wires
// it into the spill manager's hooks so run writes fail transiently under
// fault injection.
func (c *Cluster) SpillWriteFault(label string, attempt int) error {
	if err := c.injector.SpillWrite(label, attempt); err != nil {
		c.stats.FaultsInjected.Add(1)
		return err
	}
	return nil
}

// StorageWriteFault is the torn-write injection point for the paged storage
// engine; the core wires it into the store's write hook. Unlike spill
// faults, a fired draw is a simulated crash, not a retryable error.
func (c *Cluster) StorageWriteFault(seq int64, n int) (keep int, fail bool) {
	keep, fail = c.injector.StorageWrite(seq, n)
	if fail {
		c.stats.FaultsInjected.Add(1)
	}
	return keep, fail
}

// TaskObserver receives retry-related events from the task runner. The zero
// value observes nothing.
type TaskObserver struct {
	// RetryWait is called with each computed backoff duration before a task
	// re-executes (the "retry" timing entry). The duration is a deterministic
	// function of the fault config, not a measurement.
	RetryWait func(time.Duration)
}

// TaskFn is one partition task as a compute/commit pair. The compute phase
// (the function body) must treat its inputs as an immutable snapshot and
// write no shared state — it may run more than once, and two attempts may
// run concurrently under speculation. On success it returns a commit closure
// that installs results and charges stats; the runner invokes the commit of
// exactly one winning attempt. A nil commit is allowed when there is nothing
// to install.
type TaskFn func(part, attempt int) (commit func() error, err error)

// Parallel runs fn once per partition slot concurrently and returns the
// combined error. Under fault injection the closures are retried on
// transient failure but never speculated (they may write shared state);
// closures must be idempotent per partition.
func (c *Cluster) Parallel(fn func(part int) error) error {
	return c.ParallelOp("parallel", fn)
}

// ParallelOp is Parallel with an operator name for fault-injection keying
// and error attribution.
func (c *Cluster) ParallelOp(op string, fn func(part int) error) error {
	return c.parallelTasks(op, TaskObserver{}, false, func(part, _ int) (func() error, error) {
		return nil, fn(part)
	})
}

// ParallelTasks runs one compute/commit task per partition slot with bounded
// retry and, when configured, speculative re-execution of stragglers.
func (c *Cluster) ParallelTasks(op string, obs TaskObserver, fn TaskFn) error {
	return c.parallelTasks(op, obs, true, fn)
}

// RunTask runs a single retryable task (partition 0) — the harness for
// operators that execute once over gathered data, like the global sort. The
// attempt number is passed through so per-attempt resources (spill runs) key
// their fault draws correctly.
func (c *Cluster) RunTask(op string, obs TaskObserver, fn func(attempt int) error) error {
	return c.runTask(op, 0, obs, false, func(_, attempt int) (func() error, error) {
		return nil, fn(attempt)
	})
}

func (c *Cluster) parallelTasks(op string, obs TaskObserver, speculate bool, fn TaskFn) error {
	p := c.Partitions()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = c.runTask(op, i, obs, speculate, fn)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runTask drives one partition task to completion: bounded attempts,
// deterministic backoff between retries, crash/straggler injection, and
// exactly-once commit of the winning attempt.
func (c *Cluster) runTask(op string, part int, obs TaskObserver, speculate bool, fn TaskFn) error {
	max := c.injector.Attempts()
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if attempt > 0 {
			c.stats.TaskRetries.Add(1)
			if d := c.injector.Backoff(attempt); d > 0 {
				if obs.RetryWait != nil {
					obs.RetryWait(d)
				}
				time.Sleep(d)
			}
		}
		commit, err := c.executeAttempt(op, part, attempt, speculate, fn)
		if err == nil {
			if commit != nil {
				if cerr := commit(); cerr != nil {
					return c.taskErr(op, part, attempt, cerr)
				}
			}
			return nil
		}
		if !fault.Transient(err) {
			return c.taskErr(op, part, attempt, err)
		}
		lastErr = err
	}
	return &fault.TaskError{Op: op, Part: part, Attempt: max - 1, Err: lastErr}
}

// taskErr wraps a task failure for attribution. A first-attempt failure that
// was not injected passes through untouched: it is the same error the
// fault-free cluster would have returned, and callers pin those messages.
func (c *Cluster) taskErr(op string, part, attempt int, err error) error {
	if attempt == 0 && !errors.Is(err, fault.ErrInjected) {
		return err
	}
	return &fault.TaskError{Op: op, Part: part, Attempt: attempt, Err: err}
}

// executeAttempt runs one attempt of a task: crash draw, straggler delay
// (optionally racing a speculative backup), then the compute itself.
func (c *Cluster) executeAttempt(op string, part, attempt int, speculate bool, fn TaskFn) (func() error, error) {
	if err := c.injector.Crash(op, part, attempt); err != nil {
		c.stats.FaultsInjected.Add(1)
		return nil, err
	}
	if delay := c.injector.Straggle(op, part, attempt); delay > 0 {
		c.stats.FaultsInjected.Add(1)
		if speculate && c.injector.Speculate() && attempt+1 < c.injector.Attempts() {
			return c.speculateAttempt(op, part, attempt, delay, fn)
		}
		time.Sleep(delay)
	}
	return fn(part, attempt)
}

// errSpeculationLost marks a straggler attempt cancelled because its backup
// already won; it never escapes the speculation racer.
var errSpeculationLost = errors.New("cluster: speculation lost")

// speculateAttempt races a straggling attempt against a backup attempt with
// the next attempt id. Both compute from the same immutable snapshot, so
// either result is correct; the winner is chosen deterministically as the
// successful attempt with the lowest id once both goroutines have finished
// (the racer always joins both — a cancelled straggler wakes immediately).
func (c *Cluster) speculateAttempt(op string, part, attempt int, delay time.Duration, fn TaskFn) (func() error, error) {
	c.stats.SpeculativeLaunches.Add(1)
	type attemptResult struct {
		attempt int
		commit  func() error
		err     error
	}
	cancel := make(chan struct{})
	results := make(chan attemptResult, 2)
	// Straggler: serve the injected delay (interruptibly), then compute.
	go func() {
		select {
		case <-time.After(delay):
		case <-cancel:
			results <- attemptResult{attempt: attempt, err: errSpeculationLost}
			return
		}
		commit, err := fn(part, attempt)
		results <- attemptResult{attempt, commit, err}
	}()
	// Backup: a fresh attempt with its own crash draw.
	go func() {
		if err := c.injector.Crash(op, part, attempt+1); err != nil {
			c.stats.FaultsInjected.Add(1)
			results <- attemptResult{attempt: attempt + 1, err: err}
			return
		}
		commit, err := fn(part, attempt+1)
		results <- attemptResult{attempt + 1, commit, err}
	}()
	first := <-results
	if first.err == nil {
		close(cancel)
	}
	second := <-results
	lo, hi := first, second
	if lo.attempt > hi.attempt {
		lo, hi = hi, lo
	}
	if lo.err == nil {
		return lo.commit, nil
	}
	if hi.err == nil {
		return hi.commit, nil
	}
	// Both failed. Report the straggler's own failure when it has one; a
	// lost-cancellation only happens when the other attempt succeeded.
	if errors.Is(hi.err, errSpeculationLost) {
		return nil, lo.err
	}
	if errors.Is(lo.err, errSpeculationLost) {
		return nil, hi.err
	}
	return nil, lo.err
}

// ScatterRoundRobin distributes rows across partitions round-robin (how
// tables are laid out on load).
func (c *Cluster) ScatterRoundRobin(rows []value.Row) [][]value.Row {
	p := c.Partitions()
	parts := make([][]value.Row, p)
	for i, r := range rows {
		parts[i%p] = append(parts[i%p], r)
	}
	return parts
}

// ScatterHash distributes rows across partitions by the hash of the key
// columns.
func (c *Cluster) ScatterHash(rows []value.Row, keyCols []int) [][]value.Row {
	p := c.Partitions()
	parts := make([][]value.Row, p)
	for _, r := range rows {
		d := int(value.HashRowKey(r, keyCols) % uint64(p))
		parts[d] = append(parts[d], r)
	}
	return parts
}

// Gather concatenates all partitions into a single slice (used by ORDER
// BY/LIMIT and by callers collecting final results).
func (c *Cluster) Gather(parts [][]value.Row) []value.Row {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]value.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Shuffle hash-repartitions rows on the given key columns. Each source
// partition buckets its rows in parallel; rows that land on a different
// partition than they started on are charged as network traffic and, when
// SerializeShuffles is set, are round-tripped through the binary codec.
func (c *Cluster) Shuffle(parts [][]value.Row, keyCols []int) ([][]value.Row, error) {
	return c.ShuffleObs(TaskObserver{}, parts, keyCols)
}

// ShuffleObs is Shuffle with a retry observer for the exchange's delivery
// tasks.
func (c *Cluster) ShuffleObs(obs TaskObserver, parts [][]value.Row, keyCols []int) ([][]value.Row, error) {
	p := c.Partitions()
	// buckets[src][dst]
	buckets := make([][][]value.Row, len(parts))
	err := c.parallelOver(len(parts), func(src int) error {
		local := make([][]value.Row, p)
		for _, r := range parts[src] {
			d := int(value.HashRowKey(r, keyCols) % uint64(p))
			local[d] = append(local[d], r)
		}
		buckets[src] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver("shuffle", obs, buckets)
}

// ShuffleBy repartitions rows using an arbitrary destination function.
func (c *Cluster) ShuffleBy(parts [][]value.Row, dest func(value.Row) int) ([][]value.Row, error) {
	return c.ShuffleByObs(TaskObserver{}, parts, dest)
}

// ShuffleByObs is ShuffleBy with a retry observer for the exchange's
// delivery tasks.
func (c *Cluster) ShuffleByObs(obs TaskObserver, parts [][]value.Row, dest func(value.Row) int) ([][]value.Row, error) {
	p := c.Partitions()
	buckets := make([][][]value.Row, len(parts))
	err := c.parallelOver(len(parts), func(src int) error {
		local := make([][]value.Row, p)
		for _, r := range parts[src] {
			d := dest(r) % p
			if d < 0 {
				d += p
			}
			local[d] = append(local[d], r)
		}
		buckets[src] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver("shuffle", obs, buckets)
}

// deliver moves bucketed rows to their destinations. Each destination is one
// retryable task: its compute decodes incoming chunks from the immutable
// buckets snapshot and tallies traffic locally; its commit charges the stats
// and installs the rows, so a retried or aborted exchange charges nothing.
// ShuffleRounds counts completed exchanges only.
func (c *Cluster) deliver(op string, obs TaskObserver, buckets [][][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	out := make([][]value.Row, p)
	err := c.ParallelTasks(op, obs, func(dst, attempt int) (func() error, error) {
		if err := c.injector.ShuffleCorrupt(op, dst, attempt); err != nil {
			//lint:ignore commitcheck FaultsInjected counts per-attempt fault draws; a faulted attempt never commits, so the count must happen here
			c.stats.FaultsInjected.Add(1)
			return nil, err
		}
		var rows []value.Row
		var tuples, wireBytes int64
		for src := range buckets {
			chunk := buckets[src][dst]
			if len(chunk) == 0 {
				continue
			}
			if src != dst {
				tuples += int64(len(chunk))
				if c.cfg.SerializeShuffles {
					buf := value.EncodeRows(chunk)
					wireBytes += int64(len(buf))
					decoded, err := value.DecodeRows(buf)
					if err != nil {
						return nil, err
					}
					chunk = decoded
				} else {
					for _, r := range chunk {
						wireBytes += int64(r.SizeBytes())
					}
				}
			}
			rows = append(rows, chunk...)
		}
		return func() error {
			c.stats.TuplesShuffled.Add(tuples)
			c.stats.BytesShuffled.Add(wireBytes)
			c.networkWait(wireBytes)
			out[dst] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	c.stats.ShuffleRounds.Add(1)
	return out, nil
}

// Broadcast replicates every row to every partition (used for the small side
// of a cross join). Only the p-1 remote copies of each row are charged as
// network traffic: the destination's own rows stay in place, matching
// deliver's accounting. Each destination is one retryable task;
// BroadcastRounds counts completed broadcasts only.
func (c *Cluster) Broadcast(parts [][]value.Row) ([][]value.Row, error) {
	return c.BroadcastObs(TaskObserver{}, parts)
}

// BroadcastObs is Broadcast with a retry observer for the per-destination
// tasks.
func (c *Cluster) BroadcastObs(obs TaskObserver, parts [][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	// Encode each source partition once; every destination decodes the
	// remote chunks independently (the codec round-trip is the ser-de cost
	// of its private copy).
	bufs := make([][]byte, len(parts))
	if c.cfg.SerializeShuffles {
		for src := range parts {
			if len(parts[src]) > 0 {
				bufs[src] = value.EncodeRows(parts[src])
			}
		}
	}
	out := make([][]value.Row, p)
	err := c.ParallelTasks("broadcast", obs, func(dst, attempt int) (func() error, error) {
		if err := c.injector.ShuffleCorrupt("broadcast", dst, attempt); err != nil {
			//lint:ignore commitcheck FaultsInjected counts per-attempt fault draws; a faulted attempt never commits, so the count must happen here
			c.stats.FaultsInjected.Add(1)
			return nil, err
		}
		var rows []value.Row
		var tuples, wireBytes int64
		for src := range parts {
			chunk := parts[src]
			if len(chunk) == 0 {
				continue
			}
			if src != dst {
				tuples += int64(len(chunk))
				if c.cfg.SerializeShuffles {
					wireBytes += int64(len(bufs[src]))
					decoded, err := value.DecodeRows(bufs[src])
					if err != nil {
						return nil, err
					}
					chunk = decoded
				} else {
					var n int64
					for _, r := range chunk {
						n += int64(r.SizeBytes())
					}
					wireBytes += n
					// Without a codec round-trip every destination would
					// alias the same vector/matrix backing arrays — deep-copy
					// so re-executed tasks cannot observe shared mutations.
					cp := make([]value.Row, len(chunk))
					for i, r := range chunk {
						cp[i] = r.DeepClone()
					}
					chunk = cp
				}
			}
			rows = append(rows, chunk...)
		}
		return func() error {
			c.stats.TuplesShuffled.Add(tuples)
			c.stats.BytesShuffled.Add(wireBytes)
			c.networkWait(wireBytes)
			out[dst] = rows
			return nil
		}, nil
	})
	if err != nil {
		return nil, err
	}
	c.stats.BroadcastRounds.Add(1)
	return out, nil
}

// networkWait models the transfer delay of wireBytes arriving at one
// destination over its network link.
func (c *Cluster) networkWait(wireBytes int64) {
	if c.cfg.NetworkBytesPerSec <= 0 || wireBytes <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(wireBytes) / c.cfg.NetworkBytesPerSec * float64(time.Second)))
}

// NetworkWait exposes the transfer-delay model for components (baselines,
// aggregate state movement) that move bytes outside Shuffle/Broadcast.
func (c *Cluster) NetworkWait(wireBytes int64) { c.networkWait(wireBytes) }

// parallelOver runs fn for i in [0,n) concurrently, bounded by the number of
// partition slots.
func (c *Cluster) parallelOver(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, c.Partitions())
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
