// Package cluster simulates the shared-nothing cluster that the engine and
// all comparison baselines execute on. A cluster is N logical nodes × P
// partition slots; partitioned data is [][]value.Row with one slice per
// partition. Work runs partition-parallel on goroutines; rows that cross
// partitions during a shuffle are (by default) serialized and deserialized
// through the binary row codec so benchmarks pay a realistic network/ser-de
// cost, and every movement is counted in Stats.
//
// The cluster also enforces an intermediate-tuple budget, the mechanism that
// makes the paper's "Fail" entries reproducible: a plan that tries to
// materialize a quadratic tuple blow-up exceeds the budget and aborts.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relalg/internal/value"
)

// ErrResourceExhausted is returned when a plan exceeds the configured
// intermediate tuple budget (the simulated analogue of running a cluster out
// of memory/disk).
var ErrResourceExhausted = errors.New("cluster: intermediate tuple budget exhausted")

// Config sizes the simulated cluster.
type Config struct {
	// Nodes is the number of simulated machines (the paper used 10).
	Nodes int
	// PartitionsPerNode is the number of parallel slots per machine (the
	// paper's workers had 8 cores).
	PartitionsPerNode int
	// SerializeShuffles encodes/decodes rows through the binary codec on
	// every cross-partition move, charging the ser-de cost that dominates
	// distributed aggregation (Figure 4). Disable for the A3 ablation.
	SerializeShuffles bool
	// MaxIntermediateTuples aborts plans that materialize more than this
	// many tuples (0 = unlimited).
	MaxIntermediateTuples int64
	// NetworkBytesPerSec models per-link network bandwidth: every
	// destination of a shuffle or broadcast waits bytes/bandwidth before
	// its data is available (0 = infinite, no waiting). The paper's
	// Hadoop-era cluster was shuffle-bound; this knob recreates that regime
	// on in-memory hardware.
	NetworkBytesPerSec float64
	// MemoryBudgetBytes caps the bytes of operator working state (hash-join
	// tables, sort buffers, aggregation groups) one query may hold, measured
	// through the row codec's encoded sizes. Operators that would exceed it
	// spill runs to temp files and continue out-of-core instead of aborting.
	// 0 = unlimited: no governor, no spilling — the seed behaviour.
	MemoryBudgetBytes int64
}

// DefaultConfig mirrors the paper's 10-node, 8-core setup at simulation
// scale: 10 nodes × 2 partitions = 20-way parallelism.
func DefaultConfig() Config {
	return Config{Nodes: 10, PartitionsPerNode: 2, SerializeShuffles: true}
}

// Partitions returns the total number of partition slots.
func (c Config) Partitions() int {
	p := c.Nodes * c.PartitionsPerNode
	if p < 1 {
		return 1
	}
	return p
}

// KernelWorkers returns the per-kernel goroutine budget that composes with
// partition parallelism: Parallel runs one goroutine per partition slot, so
// a linear-algebra kernel invoked inside an operator may only fan out
// GOMAXPROCS/Partitions ways before the machine is oversubscribed. Always at
// least 1 (the kernel itself still runs).
func (c Config) KernelWorkers() int {
	w := runtime.GOMAXPROCS(0) / c.Partitions()
	if w < 1 {
		return 1
	}
	return w
}

// Stats aggregates movement and volume counters across a run. All fields are
// updated atomically and safe to read concurrently.
type Stats struct {
	TuplesShuffled  atomic.Int64 // rows that crossed a partition boundary
	BytesShuffled   atomic.Int64 // encoded bytes of those rows
	TuplesProduced  atomic.Int64 // rows materialized by operators
	ShuffleRounds   atomic.Int64 // number of exchange operations
	BroadcastRounds atomic.Int64
	SpillEvents     atomic.Int64 // spill runs written under memory pressure
	BytesSpilled    atomic.Int64 // file bytes of those runs
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		TuplesShuffled:  s.TuplesShuffled.Load(),
		BytesShuffled:   s.BytesShuffled.Load(),
		TuplesProduced:  s.TuplesProduced.Load(),
		ShuffleRounds:   s.ShuffleRounds.Load(),
		BroadcastRounds: s.BroadcastRounds.Load(),
		SpillEvents:     s.SpillEvents.Load(),
		BytesSpilled:    s.BytesSpilled.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	TuplesShuffled  int64
	BytesShuffled   int64
	TuplesProduced  int64
	ShuffleRounds   int64
	BroadcastRounds int64
	SpillEvents     int64
	BytesSpilled    int64
}

func (s StatsSnapshot) String() string {
	out := fmt.Sprintf("shuffled %d tuples (%d bytes) in %d rounds, %d broadcasts, produced %d tuples",
		s.TuplesShuffled, s.BytesShuffled, s.ShuffleRounds, s.BroadcastRounds, s.TuplesProduced)
	if s.SpillEvents > 0 {
		out += fmt.Sprintf(", spilled %d runs (%d bytes)", s.SpillEvents, s.BytesSpilled)
	}
	return out
}

// Cluster is one simulated cluster instance.
type Cluster struct {
	cfg   Config
	stats Stats
	used  atomic.Int64 // intermediate tuples charged so far
}

// New creates a cluster from the config.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.PartitionsPerNode <= 0 {
		cfg.PartitionsPerNode = 1
	}
	return &Cluster{cfg: cfg}
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Partitions returns the number of partition slots.
func (c *Cluster) Partitions() int { return c.cfg.Partitions() }

// Stats exposes the movement counters.
func (c *Cluster) Stats() *Stats { return &c.stats }

// ResetBudget clears the intermediate-tuple accounting (call between
// queries).
func (c *Cluster) ResetBudget() { c.used.Store(0) }

// ChargeTuples records that n intermediate tuples were materialized; it
// fails once the configured budget is exhausted.
func (c *Cluster) ChargeTuples(n int64) error {
	c.stats.TuplesProduced.Add(n)
	used := c.used.Add(n)
	if c.cfg.MaxIntermediateTuples > 0 && used > c.cfg.MaxIntermediateTuples {
		return fmt.Errorf("%w: %d tuples exceeds budget %d", ErrResourceExhausted, used, c.cfg.MaxIntermediateTuples)
	}
	return nil
}

// Parallel runs fn once per partition slot concurrently and returns the
// first error.
func (c *Cluster) Parallel(fn func(part int) error) error {
	p := c.Partitions()
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ScatterRoundRobin distributes rows across partitions round-robin (how
// tables are laid out on load).
func (c *Cluster) ScatterRoundRobin(rows []value.Row) [][]value.Row {
	p := c.Partitions()
	parts := make([][]value.Row, p)
	for i, r := range rows {
		parts[i%p] = append(parts[i%p], r)
	}
	return parts
}

// ScatterHash distributes rows across partitions by the hash of the key
// columns.
func (c *Cluster) ScatterHash(rows []value.Row, keyCols []int) [][]value.Row {
	p := c.Partitions()
	parts := make([][]value.Row, p)
	for _, r := range rows {
		d := int(value.HashRowKey(r, keyCols) % uint64(p))
		parts[d] = append(parts[d], r)
	}
	return parts
}

// Gather concatenates all partitions into a single slice (used by ORDER
// BY/LIMIT and by callers collecting final results).
func (c *Cluster) Gather(parts [][]value.Row) []value.Row {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]value.Row, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Shuffle hash-repartitions rows on the given key columns. Each source
// partition buckets its rows in parallel; rows that land on a different
// partition than they started on are charged as network traffic and, when
// SerializeShuffles is set, are round-tripped through the binary codec.
func (c *Cluster) Shuffle(parts [][]value.Row, keyCols []int) ([][]value.Row, error) {
	p := c.Partitions()
	c.stats.ShuffleRounds.Add(1)
	// buckets[src][dst]
	buckets := make([][][]value.Row, len(parts))
	err := c.parallelOver(len(parts), func(src int) error {
		local := make([][]value.Row, p)
		for _, r := range parts[src] {
			d := int(value.HashRowKey(r, keyCols) % uint64(p))
			local[d] = append(local[d], r)
		}
		buckets[src] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(buckets)
}

// ShuffleBy repartitions rows using an arbitrary destination function.
func (c *Cluster) ShuffleBy(parts [][]value.Row, dest func(value.Row) int) ([][]value.Row, error) {
	p := c.Partitions()
	c.stats.ShuffleRounds.Add(1)
	buckets := make([][][]value.Row, len(parts))
	err := c.parallelOver(len(parts), func(src int) error {
		local := make([][]value.Row, p)
		for _, r := range parts[src] {
			d := dest(r) % p
			if d < 0 {
				d += p
			}
			local[d] = append(local[d], r)
		}
		buckets[src] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c.deliver(buckets)
}

// deliver moves bucketed rows to their destinations, charging and optionally
// serializing everything that crosses a partition boundary.
func (c *Cluster) deliver(buckets [][][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	out := make([][]value.Row, p)
	var moveErr error
	var mu sync.Mutex
	err := c.parallelOver(p, func(dst int) error {
		var rows []value.Row
		var wireBytes int64
		for src := range buckets {
			chunk := buckets[src][dst]
			if len(chunk) == 0 {
				continue
			}
			if src != dst {
				c.stats.TuplesShuffled.Add(int64(len(chunk)))
				if c.cfg.SerializeShuffles {
					buf := value.EncodeRows(chunk)
					c.stats.BytesShuffled.Add(int64(len(buf)))
					wireBytes += int64(len(buf))
					decoded, err := value.DecodeRows(buf)
					if err != nil {
						mu.Lock()
						moveErr = err
						mu.Unlock()
						return err
					}
					chunk = decoded
				} else {
					var n int64
					for _, r := range chunk {
						n += int64(r.SizeBytes())
					}
					c.stats.BytesShuffled.Add(n)
					wireBytes += n
				}
			}
			rows = append(rows, chunk...)
		}
		c.networkWait(wireBytes)
		out[dst] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	if moveErr != nil {
		return nil, moveErr
	}
	return out, nil
}

// Broadcast replicates every row to every partition (used for the small side
// of a cross join). The copies are charged as network traffic.
func (c *Cluster) Broadcast(parts [][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	c.stats.BroadcastRounds.Add(1)
	all := c.Gather(parts)
	var buf []byte
	if c.cfg.SerializeShuffles {
		buf = value.EncodeRows(all)
	}
	out := make([][]value.Row, p)
	err := c.parallelOver(p, func(dst int) error {
		// p-1 remote copies; the local partition keeps its rows in place.
		c.stats.TuplesShuffled.Add(int64(len(all)))
		if c.cfg.SerializeShuffles {
			c.stats.BytesShuffled.Add(int64(len(buf)))
			c.networkWait(int64(len(buf)))
			rows, err := value.DecodeRows(buf)
			if err != nil {
				return err
			}
			out[dst] = rows
			return nil
		}
		var n int64
		for _, r := range all {
			n += int64(r.SizeBytes())
		}
		c.stats.BytesShuffled.Add(n)
		c.networkWait(n)
		cp := make([]value.Row, len(all))
		copy(cp, all)
		out[dst] = cp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// networkWait models the transfer delay of wireBytes arriving at one
// destination over its network link.
func (c *Cluster) networkWait(wireBytes int64) {
	if c.cfg.NetworkBytesPerSec <= 0 || wireBytes <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(wireBytes) / c.cfg.NetworkBytesPerSec * float64(time.Second)))
}

// NetworkWait exposes the transfer-delay model for components (baselines,
// aggregate state movement) that move bytes outside Shuffle/Broadcast.
func (c *Cluster) NetworkWait(wireBytes int64) { c.networkWait(wireBytes) }

// parallelOver runs fn for i in [0,n) concurrently, bounded by the number of
// partition slots.
func (c *Cluster) parallelOver(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, c.Partitions())
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}
