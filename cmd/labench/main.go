// Command labench regenerates the paper's tables and figures:
//
//	labench -fig 1            Figure 1 (Gram matrix) at quick scale
//	labench -fig 2 -scale paper
//	labench -fig all          everything, including the Figure 4 breakdown
//	labench -fig 5            the §4.1 optimizer plan-choice demonstration
//
// The -scale paper mode uses the paper's dimensionalities (10/100/1000) with
// row counts scaled to a single machine; see EXPERIMENTS.md for the scaling
// argument.
//
// The kernel-layer suite is separate from the figures:
//
//	labench -kernels                          print the suite, write BENCH_kernels.json
//	labench -kernels -smoke -out ""           seconds-long smoke run, no file
//
// The out-of-core sweep runs one join+aggregate query at descending memory
// budgets and verifies every budgeted run against the unlimited baseline:
//
//	labench -spill                            full sweep (unlimited → 16KiB)
//	labench -spill -smoke                     seconds-long smoke sweep
//
// The batch sweep compares the row executor against the vectorized batch
// executor on filter/join/aggregation workloads, hard-failing on any result
// divergence, and writes BENCH_batch.json:
//
//	labench -batch                            full sweep
//	labench -batch -smoke                     seconds-long smoke sweep
//
// The storage sweep runs a scan+aggregate over a persistent paged table at
// descending buffer-pool budgets, reopening each data directory mid-sweep,
// and hard-fails on result divergence, pool overrun, or restart mismatch.
// It writes BENCH_storage.json:
//
//	labench -storage                          full sweep
//	labench -storage -smoke                   seconds-long smoke sweep
//
// The fault sweep runs the same query under deterministic injected faults
// (crashes, shuffle corruption, spill write failures, stragglers) at several
// injector seeds and hard-fails unless every transient-only run reproduces
// the fault-free baseline row-for-row:
//
//	labench -faults                           full sweep, 3 seeds x 2 legs
//	labench -faults -smoke                    seconds-long smoke sweep
//
// The optimizer sweep compares each LA query with and without the algebraic
// rewrite layer, hard-failing on result divergence, on queries where no
// rewrite fired, and (in full mode) on speedups below the floor; it also
// verifies adaptive re-optimization fires under a seeded mis-estimate. It
// writes BENCH_opt.json:
//
//	labench -opt                              full sweep
//	labench -opt -smoke                       seconds-long smoke sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"relalg/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1-6 or all (6 = load-balance discussion)")
	scale := flag.String("scale", "quick", "workload scale: quick or paper")
	gramN := flag.Int("gram-n", 0, "override row count for Gram/regression")
	distN := flag.Int("dist-n", 0, "override row count for distance")
	seed := flag.Int64("seed", 0, "override data seed")
	kernels := flag.Bool("kernels", false, "run the kernel benchmark suite instead of the figures")
	batchSweep := flag.Bool("batch", false, "run the row-vs-batch executor sweep instead of the figures")
	spillSweep := flag.Bool("spill", false, "run the out-of-core spill sweep instead of the figures")
	faultSweep := flag.Bool("faults", false, "run the deterministic fault-injection sweep instead of the figures")
	storageSweep := flag.Bool("storage", false, "run the persistent-storage buffer-pool sweep instead of the figures")
	optSweep := flag.Bool("opt", false, "run the optimizer rewrite + adaptive re-optimization sweep instead of the figures")
	smoke := flag.Bool("smoke", false, "with -kernels, -batch, -spill, -faults, -storage or -opt: tiny sizes for a seconds-long smoke run")
	out := flag.String("out", "BENCH_kernels.json", "with -kernels: JSON output path (empty = don't write)")
	flag.Parse()

	if *batchSweep {
		bcfg := bench.DefaultBatchConfig()
		if *smoke {
			bcfg = bench.SmokeBatchConfig()
		}
		if *seed != 0 {
			bcfg.Seed = *seed
		}
		rep, err := bench.RunBatchSweep(bcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: batch: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		path := *out
		if path == "BENCH_kernels.json" {
			path = "BENCH_batch.json"
		}
		if path != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "labench: batch: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "labench: batch: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	if *optSweep {
		ocfg := bench.DefaultOptConfig()
		if *smoke {
			ocfg = bench.SmokeOptConfig()
		}
		if *seed != 0 {
			ocfg.Seed = *seed
		}
		rep, err := bench.RunOptSweep(ocfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: opt: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		path := *out
		if path == "BENCH_kernels.json" {
			path = "BENCH_opt.json"
		}
		if path != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "labench: opt: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "labench: opt: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	if *storageSweep {
		scfg := bench.DefaultStorageConfig()
		if *smoke {
			scfg = bench.SmokeStorageConfig()
		}
		if *seed != 0 {
			scfg.Seed = *seed
		}
		rep, err := bench.RunStorageSweep(scfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: storage: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		path := *out
		if path == "BENCH_kernels.json" {
			path = "BENCH_storage.json"
		}
		if path != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "labench: storage: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "labench: storage: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
		return
	}

	if *faultSweep {
		fcfg := bench.DefaultFaultConfig()
		if *smoke {
			fcfg = bench.SmokeFaultConfig()
		}
		if *seed != 0 {
			fcfg.Seed = *seed
		}
		rep, err := bench.RunFaultSweep(fcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: faults: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		return
	}

	if *spillSweep {
		scfg := bench.DefaultSpillConfig()
		if *smoke {
			scfg = bench.SmokeSpillConfig()
		}
		if *seed != 0 {
			scfg.Seed = *seed
		}
		rep, err := bench.RunSpillSweep(scfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: spill: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		return
	}

	if *kernels {
		kcfg := bench.DefaultKernelConfig()
		if *smoke {
			kcfg = bench.SmokeKernelConfig()
		}
		if *seed != 0 {
			kcfg.Seed = *seed
		}
		rep, err := bench.RunKernels(kcfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: kernels: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rep.Format())
		if *out != "" {
			data, err := rep.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "labench: kernels: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "labench: kernels: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	var cfg bench.Config
	switch *scale {
	case "quick":
		cfg = bench.QuickConfig()
	case "paper":
		cfg = bench.PaperConfig()
	default:
		fmt.Fprintf(os.Stderr, "labench: unknown scale %q (want quick or paper)\n", *scale)
		os.Exit(2)
	}
	if *gramN > 0 {
		cfg.GramN = *gramN
	}
	if *distN > 0 {
		cfg.DistN = *distN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	run := func(name string, f func() (string, error)) {
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "labench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	figures := map[string]func() (string, error){
		"1": func() (string, error) {
			t, err := bench.RunGram(cfg)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"2": func() (string, error) {
			t, err := bench.RunRegression(cfg)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"3": func() (string, error) {
			t, err := bench.RunDistance(cfg)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"4": func() (string, error) {
			b, err := bench.RunBreakdown(cfg)
			if err != nil {
				return "", err
			}
			return b.Format(), nil
		},
		"5": bench.OptimizerDemo,
		"6": func() (string, error) {
			// The paper's own setting: 100 blocked matrices over 80 cores.
			return bench.LoadBalanceDemo(100, 80), nil
		},
	}

	if *fig == "all" {
		for _, k := range []string{"1", "2", "3", "4", "5", "6"} {
			run("figure "+k, figures[k])
		}
		return
	}
	f, ok := figures[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "labench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	run("figure "+*fig, f)
}
