package main

import (
	"go/ast"
	"go/types"
)

// effect is a bitset of the budget/accounting side effects a function has,
// directly or through its (module-internal) callees.
type effect uint8

const (
	// effCharges: the function transitively calls Cluster.ChargeTuples.
	effCharges effect = 1 << iota
	// effChecksBudget: the function transitively calls Cluster.CheckBudget.
	effChecksBudget
	// effMutatesStats: the function transitively mutates a cluster.Stats
	// counter (Add/Store/... through a Stats-typed receiver chain).
	effMutatesStats
)

// Facts is the program-wide effect table: for each function or method object
// the loader has seen, the effects its body (including nested closures) can
// reach. Analyzer passes use it to see through helper calls — a compute
// closure that calls a helper in another package which charges the budget is
// as wrong as one that charges directly.
type Facts struct {
	effects map[types.Object]effect
}

func newFacts() *Facts {
	return &Facts{effects: map[types.Object]effect{}}
}

// Of returns the recorded effects of a function object (zero for unknown
// objects, e.g. stdlib functions, which the engine's invariants never route
// charges through).
func (f *Facts) Of(obj types.Object) effect {
	if obj == nil {
		return 0
	}
	return f.effects[obj]
}

// ensureFacts folds every not-yet-processed package of the loader into the
// effect table. loader.Order is dependency-ordered, so by the time a package
// is processed its module-internal callees already have their facts; an
// intra-package fixpoint handles same-package (including mutually recursive)
// helpers.
func (prog *Program) ensureFacts() {
	order := prog.loader.Order
	for ; prog.facted < len(order); prog.facted++ {
		prog.facts.addPackage(order[prog.facted])
	}
}

// addPackage computes effect facts for every top-level function and method of
// one package, iterating to a fixpoint so same-package helper chains resolve
// regardless of declaration order.
func (f *Facts) addPackage(p *Pkg) {
	type fn struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var fns []fn
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fns = append(fns, fn{obj: obj, body: fd.Body})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			eff := f.bodyEffect(p, fd.body)
			if old := f.effects[fd.obj]; eff|old != old {
				f.effects[fd.obj] = eff | old
				changed = true
			}
		}
	}
}

// bodyEffect scans one function body — including any nested closures, which
// is deliberately conservative: an effect reachable only from a closure the
// function builds still counts as the function's effect.
func (f *Facts) bodyEffect(p *Pkg, body *ast.BlockStmt) effect {
	var eff effect
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isStatsMutation(p, call) {
			eff |= effMutatesStats
			return true
		}
		callee := calleeFunc(p, call)
		if callee == nil {
			return true
		}
		switch {
		case isClusterMethod(callee, "ChargeTuples"):
			// ChargeTuples itself mutates stats, but the charge effect is the
			// one the checkers care about; keeping the bits separate lets
			// commitcheck leave charge calls to chargecheck.
			eff |= effCharges
		case isClusterMethod(callee, "CheckBudget"):
			eff |= effChecksBudget
		default:
			eff |= f.effects[callee]
		}
		return true
	})
	return eff
}
