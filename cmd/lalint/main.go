// Command lalint is the project's static-analysis gate: a type-aware
// (go/parser + go/types, dependency-light — no go/packages) analysis suite
// over the module, with project-specific analyzers for the determinism,
// concurrency, and accounting contracts the simulated cluster depends on.
//
// Usage:
//
//	go run ./cmd/lalint ./...                      # whole module
//	go run ./cmd/lalint ./internal/...             # one subtree
//	go run ./cmd/lalint -checker chargecheck ./... # one analyzer
//	go run ./cmd/lalint -json ./...                # machine-readable output
//
// Findings print as "file:line: [analyzer] message" (or a JSON array under
// -json) and make the exit status non-zero: 1 for findings, 2 for load or
// usage errors. Suppress an individual finding with a comment on, or directly
// above, the offending line:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var opts options
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.BoolVar(&opts.json, "json", false, "emit findings as a JSON array")
	checker := flag.String("checker", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checker != "" {
		var err error
		if opts.checkers, err = parseCheckers(*checker); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(opts, patterns))
}

// options are the driver knobs the flag set populates.
type options struct {
	json     bool
	checkers map[string]bool // nil = run all analyzers
}

// parseCheckers validates a -checker comma-list against the analyzer set.
func parseCheckers(list string) (map[string]bool, error) {
	checkers := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if analyzerNamed(name) == nil {
			return nil, fmt.Errorf("lalint: unknown checker %q (try -analyzers)", name)
		}
		checkers[name] = true
	}
	return checkers, nil
}

// run lints the patterns and prints the findings; it returns the process
// exit status (0 clean, 1 findings, 2 load error).
func run(opts options, patterns []string) int {
	diags, status := lint(opts, patterns)
	if opts.json {
		out, err := renderJSON(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lalint:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	return status
}

// lint is the testable core of the driver: it loads every package the
// patterns expand to, runs the enabled analyzers with cross-package facts,
// and returns root-relative findings plus the exit status.
func lint(opts options, patterns []string) ([]Diagnostic, int) {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return nil, 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return nil, 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return nil, 2
	}
	prog := NewProgram(loader)
	status := 0
	var diags []Diagnostic
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			status = 2
			continue
		}
		for _, d := range prog.Analyze(p, opts.checkers) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			diags = append(diags, d)
			if status == 0 {
				status = 1
			}
		}
	}
	return diags, status
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lalint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
