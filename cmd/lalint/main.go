// Command lalint is the project's static-analysis gate: a pure-stdlib
// (go/parser + go/types, no go/packages) walker over the module with
// project-specific analyzers for the determinism and concurrency contracts
// the simulated cluster depends on.
//
// Usage:
//
//	go run ./cmd/lalint ./...              # whole module
//	go run ./cmd/lalint ./internal/...     # one subtree
//
// Findings print as "file:line: [analyzer] message" and make the exit status
// non-zero. Suppress an individual finding with a comment on, or directly
// above, the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	list := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func run(patterns []string) int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	status := 0
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			status = 2
			continue
		}
		for _, d := range RunAnalyzers(p) {
			if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lalint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
