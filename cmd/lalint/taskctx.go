package main

import (
	"go/ast"
	"go/types"
)

// taskRole classifies a function literal by the cluster-runner contract it is
// executed under.
type taskRole int

const (
	// roleNone: an ordinary closure, no runner contract.
	roleNone taskRole = iota
	// roleCompute: a speculable TaskFn compute passed to ParallelTasks (or
	// the internal parallelTasks/runTask). It may run several times
	// concurrently for the same partition, and losing attempts are thrown
	// away — so it must not mutate shared state or charge the budget; all of
	// that belongs in the commit closure it returns.
	roleCompute
	// roleIdem: a closure passed to Parallel/ParallelOp/RunTask/parallelOver.
	// These are retried (never speculated), and their contract is documented
	// idempotence: mutating shared state is allowed, because only the final
	// successful attempt's effects are observable given idempotent writes.
	roleIdem
	// roleCommit: the commit closure a compute returns. Runs exactly once,
	// for the single winning attempt — the only place task results are
	// installed and stats are charged.
	roleCommit
)

func (r taskRole) String() string {
	switch r {
	case roleCompute:
		return "compute"
	case roleIdem:
		return "retryable"
	case roleCommit:
		return "commit"
	}
	return "none"
}

// runnerShape describes where one cluster-runner method keeps its task
// closure and which closure parameters are the partition / attempt indices.
type runnerShape struct {
	argIdx     int // index of the task closure argument
	partIdx    int // closure parameter index of the partition, or -1
	attemptIdx int // closure parameter index of the attempt, or -1
	role       taskRole
}

// runnerShapes maps Cluster method names to their task-closure shape.
var runnerShapes = map[string]runnerShape{
	"Parallel":      {argIdx: 0, partIdx: 0, attemptIdx: -1, role: roleIdem},
	"ParallelOp":    {argIdx: 1, partIdx: 0, attemptIdx: -1, role: roleIdem},
	"RunTask":       {argIdx: 2, partIdx: -1, attemptIdx: 0, role: roleIdem},
	"parallelOver":  {argIdx: 1, partIdx: 0, attemptIdx: -1, role: roleIdem},
	"ParallelTasks": {argIdx: 2, partIdx: 0, attemptIdx: 1, role: roleCompute},
	"parallelTasks": {argIdx: 3, partIdx: 0, attemptIdx: 1, role: roleCompute},
	"runTask":       {argIdx: 4, partIdx: 0, attemptIdx: 1, role: roleCompute},
}

// taskInfo is the classification of one function literal.
type taskInfo struct {
	role    taskRole
	part    types.Object // the partition parameter object, if any
	attempt types.Object // the attempt parameter object, if any
	compute *ast.FuncLit // for a commit: the compute literal that returns it
}

// taskMap classifies every function literal of one file by runner role.
type taskMap struct {
	lits map[*ast.FuncLit]*taskInfo
}

// buildTaskMap scans a file for cluster-runner calls, classifying the task
// literals they are handed, then the commit literals those computes return.
func buildTaskMap(p *Pkg, f *ast.File) *taskMap {
	tm := &taskMap{lits: map[*ast.FuncLit]*taskInfo{}}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || !isClusterMethod(fn, fn.Name()) {
			return true
		}
		shape, ok := runnerShapes[fn.Name()]
		if !ok || shape.argIdx >= len(call.Args) {
			return true
		}
		lit, ok := ast.Unparen(call.Args[shape.argIdx]).(*ast.FuncLit)
		if !ok {
			return true
		}
		info := &taskInfo{role: shape.role}
		params := lit.Type.Params.List
		var flat []*ast.Ident
		for _, field := range params {
			flat = append(flat, field.Names...)
		}
		if shape.partIdx >= 0 && shape.partIdx < len(flat) {
			info.part = p.Info.Defs[flat[shape.partIdx]]
		}
		if shape.attemptIdx >= 0 && shape.attemptIdx < len(flat) {
			info.attempt = p.Info.Defs[flat[shape.attemptIdx]]
		}
		tm.lits[lit] = info
		if shape.role == roleCompute {
			tm.markCommits(p, lit, info)
		}
		return true
	})
	return tm
}

// markCommits finds the commit closures a compute literal returns: a FuncLit
// appearing as the first result of a return statement that belongs to the
// compute itself (not to a nested literal), or an identifier in that position
// that the compute assigned a FuncLit to.
func (tm *taskMap) markCommits(p *Pkg, compute *ast.FuncLit, ci *taskInfo) {
	// Map each local identifier to the FuncLit assigned to it within the
	// compute, so "commit := func() error {...}; return commit, nil" works.
	assigned := map[types.Object]*ast.FuncLit{}
	ast.Inspect(compute.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				if obj := identObj(p, id); obj != nil {
					assigned[obj] = lit
				}
			}
		}
		return true
	})
	mark := func(lit *ast.FuncLit) {
		if _, done := tm.lits[lit]; !done {
			tm.lits[lit] = &taskInfo{role: roleCommit, part: ci.part, attempt: ci.attempt, compute: compute}
		}
	}
	inspectWithStack(compute.Body, func(n ast.Node, stack []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		// Only returns of the compute itself: no intervening FuncLit.
		for i := len(stack) - 1; i >= 0; i-- {
			if _, isLit := stack[i].(*ast.FuncLit); isLit {
				return true
			}
		}
		switch res := ast.Unparen(ret.Results[0]).(type) {
		case *ast.FuncLit:
			mark(res)
		case *ast.Ident:
			if lit := assigned[identObj(p, res)]; lit != nil {
				mark(lit)
			}
		}
		return true
	})
}

// at returns the task classification in effect at a node with the given
// ancestor stack: the innermost enclosing function literal with a runner
// role. Literals with no recorded role inherit the enclosing classification
// (a helper closure built inside a compute still runs under the compute's
// contract); function declarations reset to roleNone.
func (tm *taskMap) at(stack []ast.Node) *taskInfo {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			if info := tm.lits[n]; info != nil {
				return info
			}
		case *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

// atLit is at() plus the literal carrying the role — the scope checkers use
// to test whether an object is declared inside or outside the task body.
func (tm *taskMap) atLit(stack []ast.Node) (*taskInfo, *ast.FuncLit) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			if info := tm.lits[n]; info != nil {
				return info, n
			}
		case *ast.FuncDecl:
			return nil, nil
		}
	}
	return nil, nil
}
