package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: [analyzer] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one project-specific check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg, r *Reporter)
}

// Analyzers lists every check the driver runs, in output order.
var Analyzers = []*Analyzer{
	NodeterminismAnalyzer,
	LockcheckAnalyzer,
	ErrcheckAnalyzer,
	PanicpolicyAnalyzer,
	BigcopyAnalyzer,
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil with all=true means every analyzer
	all       bool
	reason    string
}

func (ig *ignoreDirective) matches(analyzer string) bool {
	return ig.all || ig.analyzers[analyzer]
}

// Reporter collects diagnostics for one package, honouring
// "//lint:ignore <analyzer>[,<analyzer>...] <reason>" suppressions. A
// directive applies to findings on its own line and on the line below it
// (so it works both trailing a statement and on the line above one).
type Reporter struct {
	pkg      *Pkg
	analyzer string
	diags    []Diagnostic
	ignores  map[string]map[int][]*ignoreDirective // file -> line -> directives
}

// NewReporter scans the package's comments for suppression directives.
func NewReporter(p *Pkg) *Reporter {
	r := &Reporter{pkg: p, ignores: map[string]map[int][]*ignoreDirective{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					r.diags = append(r.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lalint",
						Message:  "malformed lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				ig := &ignoreDirective{reason: strings.Join(fields[1:], " ")}
				if fields[0] == "all" {
					ig.all = true
				} else {
					ig.analyzers = map[string]bool{}
					for _, a := range strings.Split(fields[0], ",") {
						ig.analyzers[a] = true
					}
				}
				byLine := r.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					r.ignores[pos.Filename] = byLine
				}
				end := p.Fset.Position(c.End())
				byLine[pos.Line] = append(byLine[pos.Line], ig)
				byLine[end.Line+1] = append(byLine[end.Line+1], ig)
			}
		}
	}
	return r
}

// Reportf records a finding for the current analyzer unless a matching
// suppression covers its line.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	position := r.pkg.Fset.Position(pos)
	for _, ig := range r.ignores[position.Filename][position.Line] {
		if ig.matches(r.analyzer) {
			return
		}
	}
	r.diags = append(r.diags, Diagnostic{
		Pos:      position,
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers runs every analyzer over the package and returns the sorted
// findings.
func RunAnalyzers(p *Pkg) []Diagnostic {
	r := NewReporter(p)
	for _, a := range Analyzers {
		r.analyzer = a.Name
		a.Run(p, r)
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return r.diags
}

// pathHasSuffix reports whether an import path ends in one of the given
// package suffixes (used to scope analyzers to the simulation/exec paths;
// suffix matching keeps the testdata packages in scope for the tests).
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// enclosingFuncName walks a stack of nodes (outermost first) and returns the
// name of the innermost enclosing function declaration, or "" inside a
// function literal / outside any function.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return n.Name.Name
		}
	}
	return ""
}

// inspectWithStack walks the file keeping the ancestor stack (outermost
// first, not including the visited node itself).
func inspectWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still push/pop symmetrically; Inspect will not descend.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}
