package main

import (
	"go/ast"
)

// GocheckAnalyzer confines raw goroutine creation in the kernel and cluster
// layers to the sanctioned pool/runner entry points. Everything else must go
// through those runners, because they are what carries the engine's
// guarantees: worker counts bounded by the configured parallelism, panics
// recovered into errors, retry/speculation bookkeeping, and deterministic
// result delivery. A stray `go` statement bypasses all four — it is unbounded,
// uncounted, and invisible to the fault injector.
var GocheckAnalyzer = &Analyzer{
	Name: "gocheck",
	Doc:  "flags go statements in internal/linalg and internal/cluster outside the sanctioned pool/runner entry points",
	Run:  runGocheck,
}

// goAllowlist maps the confined package suffixes to the functions that are
// allowed to spawn goroutines: the kernel worker pool, the cluster's task
// runners/speculator, and the server's accept loop (one session goroutine
// per connection; everything a session runs goes through those runners).
var goAllowlist = map[string][]string{
	"internal/linalg":  {"parallelRanges"},
	"internal/cluster": {"parallelTasks", "parallelOver", "speculateAttempt"},
	"internal/serve":   {"Serve"},
}

func runGocheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	var allowed []string
	found := false
	for suffix, fns := range goAllowlist {
		if pathHasSuffix(p.Path, suffix) {
			allowed, found = fns, true
			break
		}
	}
	if !found {
		return
	}
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			name := enclosingFuncName(stack)
			for _, fn := range allowed {
				if name == fn {
					return true
				}
			}
			r.Reportf(g.Pos(), "raw go statement outside the sanctioned runner entry points; route the work through the pool/runner so it is bounded, recovered, and fault-injectable")
			return true
		})
	}
}
