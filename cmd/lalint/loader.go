package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one parsed and type-checked package of the module.
type Pkg struct {
	Path  string // import path, e.g. relalg/internal/exec
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages without go/packages:
// module-internal imports resolve to directories under the module root,
// everything else (the standard library) goes through the source importer.
type Loader struct {
	ModulePath string
	Root       string
	Fset       *token.FileSet
	Sizes      types.Sizes

	// Order lists every package this loader has type-checked, in completion
	// order. Because the type-checker pulls in a package's imports before the
	// package itself finishes, Order is a dependency order: a package's
	// module-internal dependencies always precede it. The cross-package fact
	// computation (facts.go) folds packages in exactly this order.
	Order []*Pkg

	fallback types.Importer
	pkgs     map[string]*Pkg
	loading  map[string]bool
}

// NewLoader builds a loader rooted at the directory containing go.mod.
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lalint: cannot read go.mod: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lalint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: mod,
		Root:       root,
		Fset:       fset,
		Sizes:      types.SizesFor("gc", "amd64"),
		fallback:   importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Pkg{},
		loading:    map[string]bool{},
	}, nil
}

// Import implements types.Importer so the type-checker can resolve both
// module-internal and standard-library imports.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fallback.Import(path)
}

// Load parses and type-checks the package at the given module import path.
func (l *Loader) Load(path string) (*Pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lalint: import cycle through %s", path)
	}
	dir := l.Root
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		dir = filepath.Join(l.Root, filepath.FromSlash(rest))
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	p, err := l.LoadDirAs(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadDirAs parses and type-checks the non-test Go files of one directory
// under an explicit import path (the hook the golden-file tests use to place
// testdata packages at analyzer-scoped paths).
func (l *Loader) LoadDirAs(dir, path string) (*Pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lalint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lalint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l, Sizes: l.Sizes}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lalint: type-checking %s: %w", path, err)
	}
	p := &Pkg{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.Order = append(l.Order, p)
	return p, nil
}

// Expand resolves command-line patterns ("./...", "./internal/...",
// "./cmd/lalint") to module import paths. Directories named testdata and
// hidden directories are skipped, as the go tool does.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if !seen[path] && dirHasGoFiles(dir) {
			seen[path] = true
			out = append(out, path)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(pat))
		// A missing directory must be a hard error, not an empty match: a
		// typo'd pattern in the CI gate would otherwise silently pass.
		if _, err := os.Stat(base); err != nil {
			return nil, fmt.Errorf("lalint: %s: %w", pat, err)
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func dirHasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
