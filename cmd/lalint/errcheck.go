package main

import (
	"go/ast"
	"go/types"
)

// ErrcheckAnalyzer flags call statements that drop an error result on the
// floor in non-test code. Assigning to _ is an explicit, visible discard and
// is allowed; the fmt print family is excluded (printing failures are not
// actionable, and builder writes cannot fail).
//
// This gate matters most in internal/spill and the exec operators that use
// it: a dropped Close/Remove/Finish error there silently leaks temp files or
// truncates a spilled run. Those paths discard errors only via `_ =` on
// cleanup-after-failure, where the original error is the actionable one.
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "flags dropped error returns in non-test code",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch x := n.(type) {
			case *ast.ExprStmt:
				call, _ = x.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = x.Call
			case *ast.GoStmt:
				call = x.Call
			}
			if call == nil || !callReturnsError(p, call) || errcheckExcluded(p, call) {
				return true
			}
			r.Reportf(call.Pos(), "result of %s contains an unchecked error; handle it or assign to _ explicitly", callName(p, call))
			return true
		})
	}
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(p *Pkg, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	isErr := func(t types.Type) bool {
		return types.TypeString(t, nil) == "error"
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErr(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErr(t)
	}
}

// errcheckExcluded reports whether the callee is on the small exclusion
// list: the fmt print family and writes to in-memory builders/buffers.
func errcheckExcluded(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		t := types.TypeString(recv.Type(), nil)
		return t == "*strings.Builder" || t == "*bytes.Buffer"
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	return false
}

// callName renders the callee for the diagnostic message.
func callName(p *Pkg, call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}
