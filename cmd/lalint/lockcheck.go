package main

import (
	"go/ast"
	"go/types"
)

// LockcheckAnalyzer flags lock-related hazards: sync primitives copied by
// value, goroutine closures capturing loop variables, and goroutine closures
// writing captured shared variables without a visible lock.
var LockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "flags copied sync primitives and goroutine closures over loop variables or unguarded shared state",
	Run:  runLockcheck,
}

func runLockcheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	for _, f := range p.Files {
		checkSyncCopies(p, r, f)
		checkGoroutineCaptures(p, r, f)
	}
}

// containsSync reports whether a value of type t embeds a sync primitive, so
// copying it would copy a lock.
func containsSync(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true
		}
		return containsSync(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSync(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSync(u.Elem(), seen)
	}
	return false
}

func typeCopiesLock(t types.Type) bool {
	return containsSync(t, map[types.Type]bool{})
}

// checkSyncCopies flags by-value parameters, receivers, results, and range
// variables whose type contains a sync primitive.
func checkSyncCopies(p *Pkg, r *Reporter, f *ast.File) {
	flagField := func(field *ast.Field, what string) {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			return
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if typeCopiesLock(tv.Type) {
			r.Reportf(field.Pos(), "%s copies a lock: %s contains a sync primitive; use a pointer", what, types.TypeString(tv.Type, types.RelativeTo(p.Types)))
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv != nil {
				for _, field := range x.Recv.List {
					flagField(field, "receiver")
				}
			}
			for _, field := range x.Type.Params.List {
				flagField(field, "parameter")
			}
			if x.Type.Results != nil {
				for _, field := range x.Type.Results.List {
					flagField(field, "result")
				}
			}
		case *ast.RangeStmt:
			if x.Value == nil {
				return true
			}
			if id, ok := x.Value.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					if _, isPtr := obj.Type().(*types.Pointer); !isPtr && typeCopiesLock(obj.Type()) {
						r.Reportf(x.Pos(), "range copies a lock: element type %s contains a sync primitive; range over indexes or pointers", types.TypeString(obj.Type(), types.RelativeTo(p.Types)))
					}
				}
			}
		case *ast.UnaryExpr:
			// `x := *p` style dereference copies are caught via assignments.
		}
		return true
	})
}

// checkGoroutineCaptures inspects every `go func(){...}()` statement for
// loop-variable capture and for writes to captured variables without a
// visible Lock in the surrounding statements.
func checkGoroutineCaptures(p *Pkg, r *Reporter, f *ast.File) {
	// Collect the objects of loop variables active at each go statement.
	type loopScope struct {
		node ast.Node
		vars map[types.Object]bool
	}
	var loops []loopScope

	loopVars := func(n ast.Node) map[types.Object]bool {
		vars := map[types.Object]bool{}
		collect := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		switch x := n.(type) {
		case *ast.RangeStmt:
			if x.Tok.String() == ":=" {
				if x.Key != nil {
					collect(x.Key)
				}
				if x.Value != nil {
					collect(x.Value)
				}
			}
		case *ast.ForStmt:
			if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok.String() == ":=" {
				for _, lhs := range init.Lhs {
					collect(lhs)
				}
			}
		}
		return vars
	}

	inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			loops = append(loops, loopScope{node: n, vars: loopVars(n)})
		}
		// Trim loops we have walked past (Inspect pops via nil, but the
		// stack check keeps this robust inside one pass).
		active := map[types.Object]bool{}
		for _, l := range loops {
			inStack := false
			for _, s := range stack {
				if s == l.node {
					inStack = true
					break
				}
			}
			if inStack || l.node == n {
				for v := range l.vars {
					active[v] = true
				}
			}
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkGoLit(p, r, lit, active)
		return true
	})
}

func checkGoLit(p *Pkg, r *Reporter, lit *ast.FuncLit, activeLoopVars map[types.Object]bool) {
	// Parameters of the literal shadow captures; anything defined inside the
	// literal is local.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[x]
			if !ok {
				return true
			}
			if activeLoopVars[obj] {
				r.Reportf(x.Pos(), "goroutine closure captures loop variable %q; pass it as an argument", x.Name)
			}
		case *ast.AssignStmt:
			if x.Tok.String() == ":=" {
				return true
			}
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // index/field writes have their own ownership story
				}
				obj, ok := p.Info.Uses[id]
				if !ok {
					continue
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					continue // declared inside the closure
				}
				if !writeIsLockGuarded(p, x) {
					r.Reportf(x.Pos(), "goroutine closure writes captured variable %q without holding a lock", id.Name)
				}
			}
		}
		return true
	})
}

// writeIsLockGuarded reports whether the assignment's enclosing block calls
// .Lock() on something before the write (the mutex-guarded error-capture
// idiom); it is a lexical heuristic, not an alias analysis.
func writeIsLockGuarded(p *Pkg, write *ast.AssignStmt) bool {
	guarded := false
	for _, f := range p.Files {
		if write.Pos() < f.Pos() || write.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok || write.Pos() < block.Pos() || write.Pos() > block.End() {
				return true
			}
			for _, stmt := range block.List {
				if stmt.End() > write.Pos() {
					break
				}
				es, ok := stmt.(*ast.ExprStmt)
				if !ok {
					continue
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					continue
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
					guarded = true
				}
			}
			return true
		})
	}
	return guarded
}
