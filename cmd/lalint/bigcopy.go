package main

import (
	"go/ast"
	"go/types"
)

// bigcopyThreshold is the struct size, in bytes, beyond which by-value
// passing on a hot path is flagged (value.Value is 64 bytes and idiomatic;
// anything twice that is a real copy cost per row).
const bigcopyThreshold = 128

// BigcopyAnalyzer flags by-value passing and range-copying of large structs
// on the executor and builtin hot paths, where a copy happens once per row
// or per block.
var BigcopyAnalyzer = &Analyzer{
	Name: "bigcopy",
	Doc:  "flags by-value passing/range-copying of large structs on hot paths (internal/exec, internal/builtins)",
	Run:  runBigcopy,
}

// bigcopyScope lists the hot-path package suffixes.
var bigcopyScope = []string{
	"internal/exec",
	"internal/builtins",
}

func runBigcopy(pass *Pass) {
	p, r := pass.Pkg, pass.R
	if !pathHasSuffix(p.Path, bigcopyScope...) {
		return
	}
	sizes := types.SizesFor("gc", "amd64")
	tooBig := func(t types.Type) (int64, bool) {
		switch t.Underlying().(type) {
		case *types.Struct, *types.Array:
			sz := sizes.Sizeof(t)
			return sz, sz > bigcopyThreshold
		}
		return 0, false
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				var fields []*ast.Field
				if x.Recv != nil {
					fields = append(fields, x.Recv.List...)
				}
				fields = append(fields, x.Type.Params.List...)
				for _, field := range fields {
					tv, ok := p.Info.Types[field.Type]
					if !ok {
						continue
					}
					if sz, big := tooBig(tv.Type); big {
						r.Reportf(field.Pos(), "%d-byte struct %s passed by value on a hot path; pass a pointer", sz, types.TypeString(tv.Type, types.RelativeTo(p.Types)))
					}
				}
			case *ast.RangeStmt:
				if x.Value == nil {
					return true
				}
				id, ok := x.Value.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					return true
				}
				if sz, big := tooBig(obj.Type()); big {
					r.Reportf(x.Pos(), "range copies a %d-byte struct %s per element on a hot path; range over indexes", sz, types.TypeString(obj.Type(), types.RelativeTo(p.Types)))
				}
			}
			return true
		})
	}
}
