package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: [analyzer] message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// diagJSON is the machine-readable form emitted under -json.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// renderJSON marshals diagnostics as a JSON array (always an array, never
// null, so consumers can range over an empty result).
func renderJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]diagJSON, len(diags))
	for i, d := range diags {
		out[i] = diagJSON{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// Analyzer is one project-specific check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Analyzers lists every check the driver runs, in output order.
var Analyzers = []*Analyzer{
	NodeterminismAnalyzer,
	LockcheckAnalyzer,
	ErrcheckAnalyzer,
	PanicpolicyAnalyzer,
	BigcopyAnalyzer,
	ChargecheckAnalyzer,
	CommitcheckAnalyzer,
	SpillkeyAnalyzer,
	PincheckAnalyzer,
	AliascheckAnalyzer,
	GocheckAnalyzer,
}

// analyzerNamed returns the analyzer with the given name, or nil.
func analyzerNamed(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass is one analyzer's view of one package: the typed syntax, the
// program-wide cross-package facts, and the reporter findings flow through.
type Pass struct {
	Pkg  *Pkg
	Prog *Program
	R    *Reporter
}

// Reportf records a finding at pos unless a suppression covers it.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	pass.R.Reportf(pos, format, args...)
}

// Program owns the cross-package state of one lint invocation: the typed
// loader and the effect facts (which functions transitively charge the tuple
// budget, peek it, or mutate cluster stats) accumulated over every package
// the loader has type-checked, in dependency order. See facts.go.
type Program struct {
	loader *Loader
	facts  *Facts
	facted int // prefix of loader.Order already folded into facts
}

// NewProgram wraps a loader with empty fact state.
func NewProgram(l *Loader) *Program {
	return &Program{loader: l, facts: newFacts()}
}

// Analyze runs the enabled analyzers (nil = all) over one loaded package and
// returns the sorted findings. Cross-package facts are brought up to date
// first, so a checker sees the effects of every dependency the loader pulled
// in while type-checking p.
func (prog *Program) Analyze(p *Pkg, enabled map[string]bool) []Diagnostic {
	prog.ensureFacts()
	r := NewReporter(p)
	for _, a := range Analyzers {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		r.analyzer = a.Name
		a.Run(&Pass{Pkg: p, Prog: prog, R: r})
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return r.diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil with all=true means every analyzer
	all       bool
	reason    string
}

func (ig *ignoreDirective) matches(analyzer string) bool {
	return ig.all || ig.analyzers[analyzer]
}

// Reporter collects diagnostics for one package, honouring
// "//lint:ignore <analyzer>[,<analyzer>...] <reason>" suppressions. A
// directive applies to findings on its own line and on the line below it
// (so it works both trailing a statement and on the line above one).
type Reporter struct {
	pkg      *Pkg
	analyzer string
	diags    []Diagnostic
	ignores  map[string]map[int][]*ignoreDirective // file -> line -> directives
}

// NewReporter scans the package's comments for suppression directives.
func NewReporter(p *Pkg) *Reporter {
	r := &Reporter{pkg: p, ignores: map[string]map[int][]*ignoreDirective{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					r.diags = append(r.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lalint",
						Message:  "malformed lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				ig := &ignoreDirective{reason: strings.Join(fields[1:], " ")}
				if fields[0] == "all" {
					ig.all = true
				} else {
					ig.analyzers = map[string]bool{}
					for _, a := range strings.Split(fields[0], ",") {
						ig.analyzers[a] = true
					}
				}
				byLine := r.ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					r.ignores[pos.Filename] = byLine
				}
				end := p.Fset.Position(c.End())
				byLine[pos.Line] = append(byLine[pos.Line], ig)
				byLine[end.Line+1] = append(byLine[end.Line+1], ig)
			}
		}
	}
	return r
}

// Reportf records a finding for the current analyzer unless a matching
// suppression covers its line.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	position := r.pkg.Fset.Position(pos)
	for _, ig := range r.ignores[position.Filename][position.Line] {
		if ig.matches(r.analyzer) {
			return
		}
	}
	r.diags = append(r.diags, Diagnostic{
		Pos:      position,
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}
