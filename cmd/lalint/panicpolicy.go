package main

import (
	"go/ast"
	"go/types"
)

// PanicpolicyAnalyzer flags panic calls in library packages. Operator and
// harness code must return errors; the only sanctioned panics are dimension
// invariant checks in internal/value and internal/linalg, and explicit
// Must*/must* helpers whose contract is to panic (the Go convention for
// opting in at the call site). internal/spill is deliberately NOT on the
// allowlist: every filesystem failure there (create, write, close, remove)
// must surface as a wrapped error so a full disk degrades into a failed
// query, not a crashed process.
var PanicpolicyAnalyzer = &Analyzer{
	Name: "panicpolicy",
	Doc:  "flags panic in library packages outside the value/linalg invariant allowlist and Must* helpers",
	Run:  runPanicpolicy,
}

// panicAllowedPkgs are the packages whose dimension-invariant panics are
// sanctioned.
var panicAllowedPkgs = []string{
	"internal/value",
	"internal/linalg",
}

func runPanicpolicy(pass *Pass) {
	p, r := pass.Pkg, pass.R
	if !pathContainsInternal(p.Path) || pathHasSuffix(p.Path, panicAllowedPkgs...) {
		return
	}
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			name := enclosingFuncName(stack)
			if len(name) >= 4 && (name[:4] == "Must" || name[:4] == "must") {
				return true
			}
			r.Reportf(call.Pos(), "panic in library code; return an error (or expose a Must* helper for callers that want to panic)")
			return true
		})
	}
}

func pathContainsInternal(path string) bool {
	return pathHasSuffix(path, "internal") || containsSegment(path, "internal")
}

func containsSegment(path, seg string) bool {
	for i := 0; i+len(seg) <= len(path); i++ {
		if path[i:i+len(seg)] == seg {
			pre := i == 0 || path[i-1] == '/'
			post := i+len(seg) == len(path) || path[i+len(seg)] == '/'
			if pre && post {
				return true
			}
		}
	}
	return false
}
