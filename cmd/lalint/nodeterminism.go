package main

import (
	"go/ast"
	"go/types"
)

// NodeterminismAnalyzer flags sources of run-to-run nondeterminism in the
// simulated-cluster and executor paths, which must be seed-deterministic so
// EXPERIMENTS.md numbers reproduce: wall-clock reads (time.Now), the global
// math/rand generator, and map iteration whose order reaches output.
var NodeterminismAnalyzer = &Analyzer{
	Name: "nodeterminism",
	Doc:  "flags time.Now, global math/rand, and map-iteration-order-dependent output in deterministic simulation paths",
	Run:  runNodeterminism,
}

// nondetScope lists the package suffixes that must stay seed-deterministic.
// internal/spill is included because run files are replayed into query
// results: spill-file contents and ordering must be identical across runs.
// internal/opt is included because plan choice (join order, rewrite output,
// CSE column order) must be identical across runs for golden-plan tests and
// the rewritten-vs-baseline identity sweep to mean anything.
var nondetScope = []string{
	"internal/cluster",
	"internal/exec",
	"internal/bench",
	"internal/workload",
	"internal/spill",
	"internal/fault",
	"internal/storage",
	"internal/opt",
}

func runNodeterminism(pass *Pass) {
	p, r := pass.Pkg, pass.R
	if !pathHasSuffix(p.Path, nondetScope...) {
		return
	}
	for _, f := range p.Files {
		checkNondetCalls(p, r, f)
		checkMapRangeOutput(p, r, f)
	}
}

// checkNondetCalls flags time.Now and global math/rand generator calls.
func checkNondetCalls(p *Pkg, r *Reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				r.Reportf(call.Pos(), "time.Now in a deterministic simulation path; inject a clock or measure outside the simulation")
			}
		case "math/rand", "math/rand/v2":
			switch fn.Name() {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
				// Constructing an explicitly seeded generator is the fix.
			default:
				r.Reportf(call.Pos(), "global math/rand.%s is process-seeded; thread an explicit seeded *rand.Rand instead", fn.Name())
			}
		}
		return true
	})
}

// checkMapRangeOutput flags range-over-map loops whose iteration order can
// reach output: loops that print/write directly from the body, or that
// append to an outer slice which is never sorted afterwards.
func checkMapRangeOutput(p *Pkg, r *Reporter, f *ast.File) {
	// Walk function by function so "sorted afterwards" can be checked
	// against the enclosing body.
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			// Nested function literals are visited by the outer walk with
			// their own body; do not double-scan them here.
			if lit, ok := n.(*ast.FuncLit); ok && n != nil && lit.Body != body {
				return false
			}
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if writesOutput(p, rng.Body) {
				r.Reportf(rng.Pos(), "map iteration order reaches output directly; iterate sorted keys instead")
				return true
			}
			if target, ok := appendsToOuter(p, rng); ok && !sortedAfter(p, body, rng) {
				r.Reportf(rng.Pos(), "map iteration appends to %q in nondeterministic order and the result is never sorted", target)
			}
			return true
		})
		return true
	})
}

// writesOutput reports whether the block directly prints or writes to a
// string/byte builder.
func writesOutput(p *Pkg, block *ast.BlockStmt) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[sel.Sel]
		if !ok {
			return true
		}
		fn, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			t := types.TypeString(recv.Type(), nil)
			if (t == "*strings.Builder" || t == "*bytes.Buffer") && len(fn.Name()) >= 5 && fn.Name()[:5] == "Write" {
				found = true
				return false
			}
			return true
		}
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			switch fn.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// appendsToOuter reports whether the range body appends to a slice variable
// declared outside the range statement, returning the variable name.
func appendsToOuter(p *Pkg, rng *ast.RangeStmt) (string, bool) {
	name, found := "", false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fid, ok := call.Fun.(*ast.Ident)
		if !ok || fid.Name != "append" {
			return true
		}
		lhs, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		target, ok := p.Info.Uses[lhs]
		if !ok {
			if def, okd := p.Info.Defs[lhs]; okd {
				target = def
			} else {
				return true
			}
		}
		// Declared outside the loop body?
		if target.Pos() < rng.Pos() || target.Pos() > rng.End() {
			name, found = lhs.Name, true
			return false
		}
		return true
	})
	return name, found
}

// sortedAfter reports whether a sort call appears lexically after the range
// statement inside the same function body.
func sortedAfter(p *Pkg, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if obj, ok := p.Info.Uses[fun.Sel]; ok && obj.Pkg() != nil && obj.Pkg().Path() == "sort" {
				found = true
			}
		case *ast.Ident:
			if len(fun.Name) >= 4 && (fun.Name[:4] == "sort" || fun.Name[:4] == "Sort") {
				found = true
			}
		}
		return !found
	})
	return found
}
