// Package opt is a lalint golden-file fixture: the plain panic below must
// be flagged by the panicpolicy analyzer, while the Must* helper is exempt.
package opt

// Reorder panics in library code instead of returning an error.
func Reorder(n int) int {
	if n < 0 {
		panic("opt: negative relation count")
	}
	return n
}

// MustReorder is a sanctioned panicking helper: the Must prefix is the
// call-site opt-in, so it is not flagged.
func MustReorder(n int) int {
	if n < 0 {
		panic("opt: negative relation count")
	}
	return n
}
