// Package opt is a lalint golden-file fixture: the same panic as the bad
// package, suppressed with a reasoned //lint:ignore directive, plus the
// error-returning fix. It must produce zero findings.
package opt

import "errors"

// Reorder returns an error instead of panicking (the clean fix).
func Reorder(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("opt: negative relation count")
	}
	return n, nil
}

// ReorderUnchecked documents why this particular panic is sanctioned.
func ReorderUnchecked(n int) int {
	if n < 0 {
		//lint:ignore panicpolicy fixture: unreachable by construction, validated by the parser
		panic("opt: negative relation count")
	}
	return n
}
