// Deliberately broken fixture: a raw go statement outside the sanctioned
// pool entry points — unbounded, unrecovered, invisible to the injector.
package linalg

import "sync"

// rowSums fans out per-row workers with raw go statements instead of the
// kernel pool.
func rowSums(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s float64
			for _, v := range rows[i] {
				s += v
			}
			out[i] = s
		}(i)
	}
	wg.Wait()
	return out
}
