// Clean fixture: goroutine creation is confined to the sanctioned pool entry
// point; everything else routes work through it.
package linalg

import "sync"

// parallelRanges is this fixture package's sanctioned pool entry point.
func parallelRanges(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// rowSums routes per-row work through the pool entry point.
func rowSums(rows [][]float64) []float64 {
	out := make([]float64, len(rows))
	parallelRanges(len(rows), func(i int) {
		var s float64
		for _, v := range rows[i] {
			s += v
		}
		out[i] = s
	})
	return out
}
