// Package pkg is a lalint golden-file fixture: the same calls as the bad
// package, with errors handled, explicitly discarded, or suppressed with a
// reasoned //lint:ignore directive. It must produce zero findings.
package pkg

import "os"

// Drop handles or visibly discards every error result.
func Drop(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// An explicit discard is allowed: the _ makes the decision visible.
	defer func() { _ = f.Close() }()
	//lint:ignore errcheck fixture: removal failure of a temp file is not actionable
	os.Remove(path)
	return nil
}
