// Package pkg is a lalint golden-file fixture: every construct below must
// be flagged by the errcheck analyzer.
package pkg

import "os"

// Drop discards error results on the floor, both deferred and inline.
func Drop(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	os.Remove(path)
}
