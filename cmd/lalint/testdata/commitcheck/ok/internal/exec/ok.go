// Clean fixtures: computes build private results; commits install them and
// touch the stats; retry-only runners use the per-partition-slot idiom.
package exec

import "relalg/internal/cluster"

// commitInstalls is the sanctioned shape: the compute reads its immutable
// inputs and builds a local result, the commit (which runs exactly once)
// installs it and updates the counters.
func commitInstalls(c *cluster.Cluster, ns []int64) ([]int64, error) {
	out := make([]int64, c.Partitions())
	err := c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		local := ns[part] * 2
		return func() error {
			out[part] = local
			c.Stats().TuplesShuffled.Add(local)
			return nil
		}, nil
	})
	return out, err
}

// idempotentSlotWrite is the retry-only runner idiom: Parallel closures are
// documented idempotent, and a per-partition slot write is idempotent.
func idempotentSlotWrite(c *cluster.Cluster, ns []int64) ([]int64, error) {
	out := make([]int64, c.Partitions())
	err := c.Parallel(func(part int) error {
		out[part] = ns[part]
		return nil
	})
	return out, err
}
