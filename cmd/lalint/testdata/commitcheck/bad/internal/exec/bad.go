// Deliberately broken fixtures: speculable computes mutating state that
// outlives the attempt.
package exec

import "relalg/internal/cluster"

// statsInCompute bumps a shared counter from a speculable compute; a
// speculated duplicate attempt double-counts.
func statsInCompute(c *cluster.Cluster, ns []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		c.Stats().TuplesShuffled.Add(ns[part])
		return func() error { return nil }, nil
	})
}

// bumpSpills is the helper helperInCompute reaches the stats through.
func bumpSpills(c *cluster.Cluster) {
	c.Stats().SpillEvents.Add(1)
}

// helperInCompute mutates stats through a same-package helper; the effect
// facts must see through the call.
func helperInCompute(c *cluster.Cluster) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		bumpSpills(c)
		return func() error { return nil }, nil
	})
}

// capturedWrites installs results from the compute instead of the commit:
// concurrent attempts for the same partition race on out and total.
func capturedWrites(c *cluster.Cluster, ns []int64) (int64, error) {
	out := make([]int64, c.Partitions())
	var total int64
	err := c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		out[part] = ns[part]
		total += ns[part]
		return func() error { return nil }, nil
	})
	if err != nil {
		return 0, err
	}
	return total + out[0], nil
}
