// Package pkg is a lalint fixture: the directive below has no reason, so it
// is rejected and the finding it tried to cover still fires.
package pkg

import "os"

// Drop tries to suppress errcheck without giving a reason.
func Drop(path string) {
	//lint:ignore errcheck
	os.Remove(path)
}
