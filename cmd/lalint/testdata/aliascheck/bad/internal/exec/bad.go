// Deliberately broken fixtures: value.Row data crossing partition and
// channel boundaries without DeepClone or the row codec.
package exec

import (
	"relalg/internal/cluster"
	"relalg/internal/value"
)

// sendAliased ships rows to another goroutine still aliasing the sender's
// cell arrays.
func sendAliased(ch chan []value.Row, rows []value.Row) {
	ch <- rows
}

// crossPartitionInstall replicates each partition's rows into a neighbour's
// slot without a private copy: both partitions end up sharing backing arrays.
func crossPartitionInstall(c *cluster.Cluster, parts [][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	out := make([][]value.Row, p)
	err := c.ParallelTasks("replicate", cluster.TaskObserver{}, func(dst, attempt int) (func() error, error) {
		rows := parts[dst]
		return func() error {
			out[(dst+1)%p] = rows
			return nil
		}, nil
	})
	return out, err
}

// sendBatchAliased ships a column batch whose per-column arrays still alias
// the sender's storage.
func sendBatchAliased(ch chan *value.Batch, b *value.Batch) {
	ch <- b
}

// crossPartitionCols installs one partition's gathered columns into a
// neighbour's slot: both partitions share the typed column arrays.
func crossPartitionCols(c *cluster.Cluster, parts [][]value.Col) ([][]value.Col, error) {
	p := c.Partitions()
	out := make([][]value.Col, p)
	err := c.ParallelTasks("scatter", cluster.TaskObserver{}, func(dst, attempt int) (func() error, error) {
		cols := parts[dst]
		return func() error {
			out[(dst+1)%p] = cols
			return nil
		}, nil
	})
	return out, err
}
