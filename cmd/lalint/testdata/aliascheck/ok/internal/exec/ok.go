// Clean fixtures: rows cross boundaries only through DeepClone or the row
// codec, or stay inside their own partition.
package exec

import (
	"relalg/internal/cluster"
	"relalg/internal/value"
)

// sendCloned deep-clones each row before the channel crossing.
func sendCloned(ch chan value.Row, rows []value.Row) {
	for _, r := range rows {
		ch <- r.DeepClone()
	}
}

// sendDecoded ships rows through the codec round-trip; decoded rows own
// freshly allocated cells by construction.
func sendDecoded(ch chan []value.Row, rows []value.Row) error {
	decoded, err := value.DecodeRows(value.EncodeRows(rows))
	if err != nil {
		return err
	}
	ch <- decoded
	return nil
}

// ownSlotInstall installs each partition's rows under its own index: the
// rows never leave their partition, so no copy is needed.
func ownSlotInstall(c *cluster.Cluster, parts [][]value.Row) ([][]value.Row, error) {
	out := make([][]value.Row, c.Partitions())
	err := c.ParallelTasks("install", cluster.TaskObserver{}, func(dst, attempt int) (func() error, error) {
		rows := parts[dst]
		return func() error {
			out[dst] = rows
			return nil
		}, nil
	})
	return out, err
}

// replicateDecoded replicates into a foreign slot through the codec — the
// private-copy path a real networked broadcast would force.
func replicateDecoded(c *cluster.Cluster, parts [][]value.Row) ([][]value.Row, error) {
	p := c.Partitions()
	out := make([][]value.Row, p)
	err := c.ParallelTasks("mirror", cluster.TaskObserver{}, func(dst, attempt int) (func() error, error) {
		decoded, err := value.DecodeRows(value.EncodeRows(parts[dst]))
		if err != nil {
			return nil, err
		}
		return func() error {
			out[(dst+1)%p] = decoded
			return nil
		}, nil
	})
	return out, err
}

// sendBatchCloned deep-clones the batch before the crossing; the clone shares
// no backing storage with the original.
func sendBatchCloned(ch chan *value.Batch, b *value.Batch) {
	ch <- b.DeepClone()
}

// sendBatchRows ships a batch's live rows through the codec instead of the
// columnar arrays themselves.
func sendBatchRows(ch chan []value.Row, b *value.Batch) error {
	decoded, err := value.DecodeRows(value.EncodeRows(b.AppendRows(nil)))
	if err != nil {
		return err
	}
	ch <- decoded
	return nil
}
