// Package cluster is a lalint golden-file fixture: every construct below
// must be flagged by the lockcheck analyzer.
package cluster

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex embedded in its parameter.
func ByValue(g guarded) int {
	return g.n
}

// Launch captures the loop variable in a goroutine closure and writes a
// captured shared variable without a lock.
func Launch(items []int) int {
	var total int
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += i
		}()
	}
	wg.Wait()
	return total
}
