// Package cluster is a lalint golden-file fixture: the same hazards as the
// bad package, fixed the sanctioned way or suppressed with a reasoned
// //lint:ignore directive. It must produce zero findings.
package cluster

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// ByPointer takes the lock-bearing struct by pointer (the clean fix).
func ByPointer(g *guarded) int {
	return g.n
}

// ByValueSuppressed documents why this particular copy is sanctioned.
//
//lint:ignore lockcheck fixture: the copy is of a never-locked zero value
func ByValueSuppressed(g guarded) int {
	return g.n
}

// parallelTasks passes the loop variable as an argument and guards the
// shared accumulator with the mutex (the clean fix, no directive needed). It
// carries the sanctioned runner entry point's name: in a cluster-path
// package, goroutine creation is confined to the runner (see gocheck).
func parallelTasks(items []int) int {
	var g guarded
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.mu.Lock()
			g.n += i
			g.mu.Unlock()
		}(i)
	}
	wg.Wait()
	return g.n
}
