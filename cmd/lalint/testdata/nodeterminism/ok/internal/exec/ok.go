// Package exec is a lalint golden-file fixture: the same constructs as the
// bad package, either fixed the sanctioned way or suppressed with a
// reasoned //lint:ignore directive. It must produce zero findings.
package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp documents why this wall-clock read is sanctioned.
func Stamp() int64 {
	//lint:ignore nodeterminism fixture: timing is measured output, not simulation state
	return time.Now().UnixNano()
}

// Draw threads an explicitly seeded generator (the clean fix, no directive
// needed).
func Draw(r *rand.Rand) float64 {
	return r.Float64()
}

// NewDraw constructs the seeded generator; constructors are not flagged.
func NewDraw(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// PrintAll suppresses the direct-output finding with a reason.
func PrintAll(m map[string]int) {
	//lint:ignore nodeterminism fixture: diagnostic-only output, order does not matter
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Collect sorts after the loop (the clean fix, no directive needed).
func Collect(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
