// Package exec is a lalint golden-file fixture: every construct below must
// be flagged by the nodeterminism analyzer.
package exec

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside a simulation path.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Draw uses the process-seeded global generator.
func Draw() float64 {
	return rand.Float64()
}

// PrintAll lets map iteration order reach output directly.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// Collect appends in map order and never sorts the result.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
