// Package helperpkg exists so the chargecheck golden tests exercise
// cross-package effect facts: the bad fixture reaches ChargeTuples only
// through this helper, and the checker must see through the call.
package helperpkg

import "relalg/internal/cluster"

// ChargeVia charges the cluster's tuple budget on the caller's behalf.
func ChargeVia(c *cluster.Cluster, n int64) error {
	return c.ChargeTuples(n)
}
