// Deliberately broken fixtures: every ChargeTuples here is reachable from a
// retryable or speculable path, or a CheckBudget runs at commit time.
package exec

import (
	"relalg/cmd/lalint/testdata/chargecheck/helperpkg"
	"relalg/internal/cluster"
)

// directInCompute charges from a speculable compute: every losing or retried
// attempt charges again.
func directInCompute(c *cluster.Cluster, counts []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		if err := c.ChargeTuples(counts[part]); err != nil {
			return nil, err
		}
		return func() error { return nil }, nil
	})
}

// viaHelperInCompute reaches ChargeTuples through another package's helper;
// the cross-package facts must see through the call.
func viaHelperInCompute(c *cluster.Cluster, counts []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		if err := helperpkg.ChargeVia(c, counts[part]); err != nil {
			return nil, err
		}
		return func() error { return nil }, nil
	})
}

// inRetryable charges from a retried closure: each retry re-charges.
func inRetryable(c *cluster.Cluster, counts []int64) error {
	return c.Parallel(func(part int) error {
		return c.ChargeTuples(counts[part])
	})
}

// budgetInCommit peeks the budget after the rows already exist.
func budgetInCommit(c *cluster.Cluster, counts []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		n := counts[part]
		return func() error {
			if err := c.CheckBudget(n); err != nil {
				return err
			}
			return c.ChargeTuples(n)
		}, nil
	})
}

// chargePerIteration charges row group by row group instead of once.
func chargePerIteration(c *cluster.Cluster, counts []int64) error {
	for _, n := range counts {
		if err := c.ChargeTuples(n); err != nil {
			return err
		}
	}
	return nil
}

// chargePerBatch charges every batch window from a speculable compute: each
// retried attempt re-walks the windows and re-charges all of them.
func chargePerBatch(c *cluster.Cluster, batches [][]int64) error {
	return c.ParallelTasks("agg", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		for _, b := range batches {
			if err := c.ChargeTuples(int64(len(b))); err != nil {
				return nil, err
			}
		}
		return func() error { return nil }, nil
	})
}
