// Clean fixtures: charges happen exactly once, on the commit path or after
// the runner returns; budget peeks stay in compute.
package exec

import "relalg/internal/cluster"

// chargeAtCommit admits work in compute and charges exactly once at commit.
func chargeAtCommit(c *cluster.Cluster, counts []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		if err := c.CheckBudget(counts[part]); err != nil {
			return nil, err
		}
		total := counts[part]
		return func() error {
			return c.ChargeTuples(total)
		}, nil
	})
}

// chargeViaNamedCommit returns the commit closure through a local variable;
// the checker must still classify it as the commit path.
func chargeViaNamedCommit(c *cluster.Cluster, counts []int64) error {
	return c.ParallelTasks("op", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		total := counts[part]
		commit := func() error { return c.ChargeTuples(total) }
		return commit, nil
	})
}

// chargeAfterRunner accumulates and charges once at top level, outside any
// retryable closure.
func chargeAfterRunner(c *cluster.Cluster, counts []int64) error {
	if err := c.Parallel(func(part int) error { return nil }); err != nil {
		return err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return c.ChargeTuples(total)
}

// suppressed opts out with a justified directive: the harness around this
// task resets the stats between attempts.
func suppressed(c *cluster.Cluster) error {
	return c.Parallel(func(part int) error {
		//lint:ignore chargecheck the harness resets Stats between attempts, so re-charges cannot accumulate
		return c.ChargeTuples(1)
	})
}

// batchAccumulateThenCommit walks the batch windows in compute, admitting
// work as it goes, and charges the accumulated count exactly once from the
// commit closure — the batch executor's charge pattern.
func batchAccumulateThenCommit(c *cluster.Cluster, batches [][]int64) error {
	return c.ParallelTasks("agg", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		var total int64
		for _, b := range batches {
			if err := c.CheckBudget(int64(len(b))); err != nil {
				return nil, err
			}
			total += int64(len(b))
		}
		return func() error {
			return c.ChargeTuples(total)
		}, nil
	})
}
