// Clean fixtures: writers are created inside the task with the live attempt,
// every handle reaches Finish/Abort/Close or visibly escapes to a new owner.
package exec

import (
	"relalg/internal/cluster"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// attemptKeyed creates its writer inside the task, keyed by the live attempt,
// and finishes or aborts it on every path.
func attemptKeyed(c *cluster.Cluster, m *spill.Manager, rows []value.Row) ([]*spill.Run, error) {
	runs := make([]*spill.Run, c.Partitions())
	err := c.ParallelTasks("spill", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		w, err := m.NewWriterAt("run", attempt)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if err := w.Append(r); err != nil {
				_ = w.Abort()
				return nil, err
			}
		}
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		return func() error {
			runs[part] = run
			return nil
		}, nil
	})
	return runs, err
}

// readBack drains a run, closing the reader on every path.
func readBack(run *spill.Run) (int64, error) {
	rd, err := run.Reader()
	if err != nil {
		return 0, err
	}
	defer func() {
		_ = rd.Close()
	}()
	var n int64
	for {
		_, ok, err := rd.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// escapes hands the writer to a caller-owned slice: ownership (and the
// Finish/Abort obligation) moves with it.
func escapes(m *spill.Manager, attempt int, sink *[]*spill.Writer) error {
	w, err := m.NewWriterAt("deferred-run", attempt)
	if err != nil {
		return err
	}
	*sink = append(*sink, w)
	return nil
}
