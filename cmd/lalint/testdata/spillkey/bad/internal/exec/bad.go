// Deliberately broken fixtures: spill handles that are not attempt-keyed,
// leak, or cross attempt boundaries.
package exec

import (
	"relalg/internal/cluster"
	"relalg/internal/spill"
	"relalg/internal/value"
)

// shorthandWriter uses the NewWriter shorthand, which hardcodes attempt 0.
func shorthandWriter(m *spill.Manager, rows []value.Row) error {
	w, err := m.NewWriter("sort-run")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			_ = w.Abort()
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	return run.Remove()
}

// constantAttempt keys the write-fault draw to a constant, so a retried task
// re-draws the same fault forever.
func constantAttempt(m *spill.Manager, rows []value.Row) error {
	w, err := m.NewWriterAt("agg-run", 0)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			_ = w.Abort()
			return err
		}
	}
	_, err = w.Finish()
	return err
}

// leakyWriter reaches neither Finish nor Abort: the run file lingers until
// Manager.Close.
func leakyWriter(m *spill.Manager, rows []value.Row, attempt int) error {
	w, err := m.NewWriterAt("join-run", attempt)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// leakyReader never closes its read handle.
func leakyReader(run *spill.Run) (int, error) {
	rd, err := run.Reader()
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		_, ok, err := rd.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// crossAttempt captures a writer created outside the task: a retried attempt
// resumes the failed attempt's half-written run instead of starting fresh.
func crossAttempt(c *cluster.Cluster, m *spill.Manager, rows []value.Row) error {
	startAttempt := 0
	w, err := m.NewWriterAt("shared-run", startAttempt)
	if err != nil {
		return err
	}
	err = c.ParallelTasks("spill", cluster.TaskObserver{}, func(part, attempt int) (func() error, error) {
		for _, r := range rows {
			if err := w.Append(r); err != nil {
				return nil, err
			}
		}
		return func() error { return nil }, nil
	})
	if err != nil {
		_ = w.Abort()
		return err
	}
	_, err = w.Finish()
	return err
}
