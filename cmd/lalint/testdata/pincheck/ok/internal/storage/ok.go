// Clean fixtures: every fetched page is released on every path, deferred
// releases stay at function scope, and a handle that escapes to a new owner
// carries its unpin obligation with it.
package storage

import "errors"

// pinAndDecode releases the page as soon as the payload has been read.
func pinAndDecode(p *pool, pi pageInfo) (int, error) {
	pg, err := p.fetch(pi)
	if err != nil {
		return 0, err
	}
	n := len(pg.Data())
	pg.Release()
	return n, nil
}

// deferredAtFunctionScope holds one pin for the function body — the defer is
// outside any loop, so pins do not accumulate.
func deferredAtFunctionScope(p *pool, pi pageInfo) (int, error) {
	pg, err := p.fetch(pi)
	if err != nil {
		return 0, err
	}
	defer pg.Release()
	return len(pg.Data()), nil
}

// releasePerIteration unpins each page before fetching the next, so the scan
// holds at most one pin at a time.
func releasePerIteration(p *pool, pages []pageInfo) (int, error) {
	total := 0
	for _, pi := range pages {
		pg, err := p.fetch(pi)
		if err != nil {
			return 0, err
		}
		total += len(pg.Data())
		pg.Release()
	}
	return total, nil
}

// escapes hands the pinned page to a caller-owned sink: ownership (and the
// Release obligation) moves with it.
func escapes(p *pool, pi pageInfo, sink *[]*Page) error {
	pg, err := p.fetch(pi)
	if err != nil {
		return err
	}
	*sink = append(*sink, pg)
	return nil
}

// frame is one cached page image with its pin count.
type frame struct {
	data []byte
	pins int
}

// pool caches page images keyed by slot.
type pool struct {
	frames map[uint32]*frame
}

// pageInfo addresses one committed page.
type pageInfo struct {
	Slot uint32
}

// Page is a pinned handle on a cached page image.
type Page struct {
	fr *frame
}

// fetch returns a pinned handle; callers must Release it.
func (p *pool) fetch(pi pageInfo) (*Page, error) {
	fr, ok := p.frames[pi.Slot]
	if !ok {
		return nil, errors.New("storage: no frame for slot")
	}
	fr.pins++
	return &Page{fr: fr}, nil
}

// Data returns the page image. Valid only while the page is pinned.
func (pg *Page) Data() []byte { return pg.fr.data }

// Release unpins the page. Safe to call more than once.
func (pg *Page) Release() {
	if pg.fr == nil {
		return
	}
	pg.fr.pins--
	pg.fr = nil
}
