// Deliberately broken fixtures: buffer-pool pins that are discarded, leak,
// or are released only by a defer inside a loop. The miniature pool API at
// the bottom mirrors the real one — what matters to the checker is the
// pool.fetch / Page.Release shape at an internal/storage import path.
package storage

import "errors"

// discardedPin fetches into the blank identifier: the pin is taken but the
// handle is gone, so the frame can never be unpinned.
func discardedPin(p *pool, pi pageInfo) error {
	_, err := p.fetch(pi)
	return err
}

// leakyPin decodes the page but never releases it: the frame stays pinned
// and the pool can never evict it.
func leakyPin(p *pool, pi pageInfo) (int, error) {
	pg, err := p.fetch(pi)
	if err != nil {
		return 0, err
	}
	return len(pg.Data()), nil
}

// deferredInLoop pins every page of the partition before any unpin runs:
// the deferred releases fire only at return, so the pool fills up.
func deferredInLoop(p *pool, pages []pageInfo) (int, error) {
	total := 0
	for _, pi := range pages {
		pg, err := p.fetch(pi)
		if err != nil {
			return 0, err
		}
		defer pg.Release()
		total += len(pg.Data())
	}
	return total, nil
}

// frame is one cached page image with its pin count.
type frame struct {
	data []byte
	pins int
}

// pool caches page images keyed by slot.
type pool struct {
	frames map[uint32]*frame
}

// pageInfo addresses one committed page.
type pageInfo struct {
	Slot uint32
}

// Page is a pinned handle on a cached page image.
type Page struct {
	fr *frame
}

// fetch returns a pinned handle; callers must Release it.
func (p *pool) fetch(pi pageInfo) (*Page, error) {
	fr, ok := p.frames[pi.Slot]
	if !ok {
		return nil, errors.New("storage: no frame for slot")
	}
	fr.pins++
	return &Page{fr: fr}, nil
}

// Data returns the page image. Valid only while the page is pinned.
func (pg *Page) Data() []byte { return pg.fr.data }

// Release unpins the page. Safe to call more than once.
func (pg *Page) Release() {
	if pg.fr == nil {
		return
	}
	pg.fr.pins--
	pg.fr = nil
}
