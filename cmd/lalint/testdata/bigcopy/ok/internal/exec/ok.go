// Package exec is a lalint golden-file fixture: the same hot-path loops as
// the bad package, fixed with pointers/indexes or suppressed with a
// reasoned //lint:ignore directive. It must produce zero findings.
package exec

type block struct {
	cells [32]float64
}

// Sum takes the block by pointer (the clean fix).
func Sum(b *block) float64 {
	var t float64
	for _, c := range b.cells {
		t += c
	}
	return t
}

// SumByValue documents why this particular copy is sanctioned.
//
//lint:ignore bigcopy fixture: called once per query, not per row
func SumByValue(b block) float64 {
	var t float64
	for _, c := range b.cells {
		t += c
	}
	return t
}

// Total ranges over indexes (the clean fix, no directive needed).
func Total(blocks []block) float64 {
	var t float64
	for i := range blocks {
		t += Sum(&blocks[i])
	}
	return t
}
