// Package exec is a lalint golden-file fixture: every construct below must
// be flagged by the bigcopy analyzer (block is 256 bytes, over the 128-byte
// threshold).
package exec

type block struct {
	cells [32]float64
}

// Sum takes the 256-byte block by value on a hot path.
func Sum(b block) float64 {
	var t float64
	for _, c := range b.cells {
		t += c
	}
	return t
}

// Total copies a 256-byte block per element in its range loop.
func Total(blocks []block) float64 {
	var t float64
	for _, b := range blocks {
		t += Sum(b)
	}
	return t
}
