package main

import (
	"go/ast"
)

// ChargecheckAnalyzer enforces the engine's exactly-once accounting contract
// for ChargeTuples: under the cluster's retry/speculation model a compute may
// run several times per partition, so a charge issued from a compute (or any
// retryable closure) is double-counted whenever an attempt loses the race or
// is retried. Charges belong on the commit path — the closure that runs once,
// for the winning attempt — or at top level after the runner returns. It also
// flags CheckBudget on the commit path: the budget peek is admission control
// for work about to happen, which is compute's job; by commit time the rows
// already exist and refusing them would lose them.
var ChargecheckAnalyzer = &Analyzer{
	Name: "chargecheck",
	Doc:  "flags ChargeTuples reachable from a retryable compute path (double-charge) and CheckBudget on a commit path",
	Run:  runChargecheck,
}

func runChargecheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	facts := pass.Prog.facts
	for _, f := range p.Files {
		tm := buildTaskMap(p, f)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p, call)
			if callee == nil {
				return true
			}
			charges := isClusterMethod(callee, "ChargeTuples")
			chargesVia := !charges && facts.Of(callee)&effCharges != 0
			checks := isClusterMethod(callee, "CheckBudget")
			checksVia := !checks && facts.Of(callee)&effChecksBudget != 0
			if !charges && !chargesVia && !checks && !checksVia {
				return true
			}
			info := tm.at(stack)
			role := roleNone
			if info != nil {
				role = info.role
			}
			switch {
			case (charges || chargesVia) && (role == roleCompute || role == roleIdem):
				how := "calls ChargeTuples"
				if chargesVia {
					how = "reaches ChargeTuples via " + callee.Name()
				}
				r.Reportf(call.Pos(), "%s task %s; retried/speculated attempts double-charge — charge from the commit closure instead", role, how)
			case charges && inLoop(stack):
				// Only direct calls: a helper that transitively charges (a
				// whole query run, say) is legitimately invoked in a loop —
				// each invocation accounts for its own rows.
				r.Reportf(call.Pos(), "ChargeTuples inside a loop charges once per iteration; accumulate a count and charge once")
			case (checks || checksVia) && role == roleCommit:
				how := "calls CheckBudget"
				if checksVia {
					how = "reaches CheckBudget via " + callee.Name()
				}
				r.Reportf(call.Pos(), "commit closure %s; budget admission belongs in compute, before the rows are produced", how)
			}
			return true
		})
	}
}
