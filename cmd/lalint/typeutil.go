package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathHasSuffix reports whether an import path ends in one of the given
// package suffixes (used to scope analyzers to the simulation/exec paths;
// suffix matching keeps the testdata packages in scope for the tests).
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// enclosingFuncName walks a stack of nodes (outermost first) and returns the
// name of the innermost enclosing function declaration, or "" inside a
// function literal / outside any function.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return n.Name.Name
		}
	}
	return ""
}

// inspectWithStack walks the file keeping the ancestor stack (outermost
// first, not including the visited node itself).
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		stack = append(stack, n)
		if !ok {
			// Still push/pop symmetrically; Inspect will not descend.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}

// calleeFunc resolves the called function or method object of a call
// expression, or nil for builtins, conversions, and indirect calls through
// function values.
func calleeFunc(p *Pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvNamed returns the named type of a method's receiver (through one
// pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOf reports whether fn is a method with the given name on the named
// receiver type declared in a package whose import path ends in pkgSuffix.
func isMethodOf(fn *types.Func, pkgSuffix, recvName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == recvName && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isClusterMethod reports whether fn is the named method on cluster.Cluster.
func isClusterMethod(fn *types.Func, name string) bool {
	return isMethodOf(fn, "internal/cluster", "Cluster", name)
}

// isValuePkgFunc reports whether fn is the named package-level function of
// internal/value.
func isValuePkgFunc(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || recvNamed(fn) != nil {
		return false
	}
	return fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), "internal/value")
}

// namedFrom reports whether t (through one pointer) is the named type
// recvName declared in a package whose path ends in pkgSuffix.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// isClusterStatsType reports whether t is cluster.Stats or *cluster.Stats.
func isClusterStatsType(t types.Type) bool {
	return namedFrom(t, "internal/cluster", "Stats")
}

// isStatsMutation reports whether the call mutates a cluster.Stats counter: a
// method named Add/Store/Swap/CompareAndSwap invoked through a receiver chain
// that passes through an expression of type cluster.Stats (e.g.
// c.stats.TuplesShuffled.Add(n) or ctx.Cluster.Stats().BytesShuffled.Add(n)).
func isStatsMutation(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Add", "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	for e := ast.Unparen(sel.X); e != nil; {
		if tv, ok := p.Info.Types[e]; ok && isClusterStatsType(tv.Type) {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.CallExpr:
			e = ast.Unparen(x.Fun)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return false
		}
	}
	return false
}

// typeContainsRow reports whether t is, or transitively contains, a
// value.Row, value.Value, value.Batch, or value.Col — the types whose
// vector/matrix cells (or, for the columnar types, whole per-column arrays)
// alias their backing storage and therefore must be deep-cloned or serialized
// before they are shared across partitions or goroutines.
func typeContainsRow(t types.Type) bool {
	return containsRow(t, map[types.Type]bool{})
}

func containsRow(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if namedFrom(t, "internal/value", "Row") || namedFrom(t, "internal/value", "Value") ||
		namedFrom(t, "internal/value", "Batch") || namedFrom(t, "internal/value", "Col") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return containsRow(u.Elem(), seen)
	case *types.Array:
		return containsRow(u.Elem(), seen)
	case *types.Pointer:
		return containsRow(u.Elem(), seen)
	case *types.Map:
		return containsRow(u.Key(), seen) || containsRow(u.Elem(), seen)
	case *types.Chan:
		return containsRow(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRow(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// rootIdent unwraps index, selector, star, and paren layers and returns the
// base identifier of an lvalue expression (out[part] -> out, s.f[i] -> s),
// or nil when the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(p *Pkg, id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's span.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// inLoop reports whether the innermost statements around the visited node
// include a for/range loop before the enclosing function boundary — i.e. the
// node executes once per iteration of a loop in its own function.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
