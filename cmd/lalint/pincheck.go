package main

import (
	"go/ast"
	"go/types"
)

// PincheckAnalyzer enforces the buffer pool's pin/unpin contract. pool.fetch
// returns a pinned Page; a pinned frame cannot be evicted, so every fetch
// must be paired with exactly one Release before the scan moves on. A handle
// discarded into the blank identifier can never be unpinned, a handle that
// reaches no Release on any local path (and does not escape to a new owner)
// pins its frame until process exit, and a Release deferred inside a loop
// holds every iteration's pin until the function returns — a partition scan
// written that way fills the pool with pinned frames and defeats the budget.
var PincheckAnalyzer = &Analyzer{
	Name: "pincheck",
	Doc:  "flags buffer-pool pages that are discarded while pinned, never released, or released only by a defer inside a loop",
	Run:  runPincheck,
}

func runPincheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	// The pool API is unexported, so only internal/storage can pin pages.
	if !pathHasSuffix(p.Path, "internal/storage") {
		return
	}
	for _, f := range p.Files {
		checkDiscardedPins(p, r, f)
		checkDeferredReleaseInLoop(p, r, f)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPinLifecycle(p, r, fd)
			}
		}
	}
}

// isPoolFetch matches pool.fetch, the only pin source.
func isPoolFetch(p *Pkg, call *ast.CallExpr) bool {
	return isMethodOf(calleeFunc(p, call), "internal/storage", "pool", "fetch")
}

// checkDiscardedPins flags a fetch whose page lands in the blank identifier:
// the pin is taken but the handle is gone, so the frame stays pinned forever.
func checkDiscardedPins(p *Pkg, r *Reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPoolFetch(p, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
			r.Reportf(call.Pos(), "fetched page discarded into _; the pin can never be released and the frame is stuck in the pool")
		}
		return true
	})
}

// checkDeferredReleaseInLoop flags defer page.Release() inside a for/range
// loop: the deferred unpins only run at return, so a scan accumulates one
// pinned frame per iteration.
func checkDeferredReleaseInLoop(p *Pkg, r *Reporter, f *ast.File) {
	inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if !isMethodOf(calleeFunc(p, def.Call), "internal/storage", "Page", "Release") {
			return true
		}
		if inLoop(stack) {
			r.Reportf(def.Pos(), "Release deferred inside a loop holds every iteration's pin until the function returns; release the page before the next iteration")
		}
		return true
	})
}

// checkPinLifecycle flags, per function declaration, fetched pages that never
// reach Release. A handle that escapes — returned, stored in a field/slice/
// map, passed to another call — transfers the unpin obligation to its new
// owner and is not flagged.
func checkPinLifecycle(p *Pkg, r *Reporter, fd *ast.FuncDecl) {
	type handle struct {
		id *ast.Ident
		ok bool // released or escaped
	}
	handles := map[types.Object]*handle{}

	// Collect handles created by this function: pg, err := pool.fetch(...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPoolFetch(p, call) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(p, id); obj != nil {
				handles[obj] = &handle{id: id}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	// Release method calls discharge the obligation; any use that is not a
	// method/field access on the handle is an escape.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		h := handles[p.Info.Uses[id]]
		if h == nil || h.ok {
			return true
		}
		use := enclosingUse(fd, id)
		if sel, ok := use.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Release" {
				h.ok = true
			}
			return true
		}
		// Not a selector receiver: returned, appended, assigned into a
		// structure, passed as an argument — ownership moved.
		h.ok = true
		return true
	})
	for _, h := range handles {
		if !h.ok {
			r.Reportf(h.id.Pos(), "page %q is fetched but never released; the frame stays pinned and the pool cannot evict it", h.id.Name)
		}
	}
}
