package main

import (
	"go/ast"
	"go/token"
)

// CommitcheckAnalyzer enforces the compute/commit split of the cluster's
// speculative task runner: a compute closure may run concurrently with a
// speculated duplicate of itself and losing attempts are discarded, so any
// write it makes to state outside its own body — a cluster.Stats counter or a
// captured variable — is observable from attempts that were supposed to never
// have happened. Computes read immutable snapshots and build private results;
// the commit closure (which runs exactly once) installs them.
//
// Closures passed to the retry-only runners (Parallel/ParallelOp/RunTask) are
// exempt: their documented contract is idempotence, and per-partition slot
// writes there are the normal result-return idiom.
var CommitcheckAnalyzer = &Analyzer{
	Name: "commitcheck",
	Doc:  "flags Stats mutation and captured-state writes inside speculable compute closures",
	Run:  runCommitcheck,
}

func runCommitcheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	facts := pass.Prog.facts
	for _, f := range p.Files {
		tm := buildTaskMap(p, f)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			info, lit := tm.atLit(stack)
			if info == nil || info.role != roleCompute {
				return true
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if isStatsMutation(p, x) {
					r.Reportf(x.Pos(), "compute task mutates cluster stats; speculated attempts double-count — move the mutation to the commit closure")
					return true
				}
				callee := calleeFunc(p, x)
				if callee == nil {
					break
				}
				eff := facts.Of(callee)
				// Charge calls are chargecheck's finding; report helpers that
				// mutate stats without going through ChargeTuples.
				if eff&effMutatesStats != 0 && eff&effCharges == 0 && !isClusterMethod(callee, "ChargeTuples") {
					r.Reportf(x.Pos(), "compute task calls %s, which mutates cluster stats; speculated attempts double-count — move it to the commit closure", callee.Name())
				}
			case *ast.AssignStmt:
				if x.Tok == token.DEFINE {
					break
				}
				for _, lhs := range x.Lhs {
					reportCapturedWrite(p, r, lit, lhs)
				}
			case *ast.IncDecStmt:
				reportCapturedWrite(p, r, lit, x.X)
			}
			return true
		})
	}
}

// reportCapturedWrite flags a write through an lvalue whose root identifier
// is declared outside the compute literal. Writes into a commit closure
// nested in the compute are that closure's business, and atLit already
// resolved the innermost role, so lit here really is the compute body.
func reportCapturedWrite(p *Pkg, r *Reporter, lit *ast.FuncLit, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	obj := identObj(p, id)
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	// Package-level and method-receiver state counts too; only truly local
	// declarations (parameters included — they are inside the literal's span)
	// are private to the attempt.
	r.Reportf(lhs.Pos(), "compute task writes captured %q declared outside the task; speculated attempts race — build the result locally and install it in the commit closure", id.Name)
}
