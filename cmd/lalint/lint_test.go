package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenCases maps each analyzer to its fixture packages. The directory
// layout places every fixture at an import path ending in a suffix the
// analyzer is scoped to (e.g. .../bad/internal/exec), so the packages are
// linted exactly like the real module packages.
var goldenCases = []struct {
	analyzer string
	bad, ok  string // directories relative to testdata/
}{
	{"nodeterminism", "nodeterminism/bad/internal/exec", "nodeterminism/ok/internal/exec"},
	{"lockcheck", "lockcheck/bad/internal/cluster", "lockcheck/ok/internal/cluster"},
	{"errcheck", "errcheck/bad/pkg", "errcheck/ok/pkg"},
	{"panicpolicy", "panicpolicy/bad/internal/opt", "panicpolicy/ok/internal/opt"},
	{"bigcopy", "bigcopy/bad/internal/exec", "bigcopy/ok/internal/exec"},
}

// loadFixture type-checks one testdata package at its natural import path.
func loadFixture(t *testing.T, rel string) *Pkg {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", filepath.FromSlash(rel))
	path := loader.ModulePath + "/cmd/lalint/testdata/" + rel
	p, err := loader.LoadDirAs(dir, path)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	return p
}

// render formats diagnostics with basenames so goldens are location-stable.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.analyzer, func(t *testing.T) {
			p := loadFixture(t, c.bad)
			var diags []Diagnostic
			for _, d := range RunAnalyzers(p) {
				if d.Analyzer == c.analyzer {
					diags = append(diags, d)
				}
			}
			if len(diags) == 0 {
				t.Fatalf("bad fixture %s produced no %s findings", c.bad, c.analyzer)
			}
			got := render(diags)
			goldenPath := filepath.Join("testdata", c.analyzer, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

func TestSuppressed(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.analyzer, func(t *testing.T) {
			p := loadFixture(t, c.ok)
			if diags := RunAnalyzers(p); len(diags) != 0 {
				t.Errorf("ok fixture %s produced findings:\n%s", c.ok, render(diags))
			}
		})
	}
}

// TestDriverExitCodes runs the real driver entry point: findings must make
// the exit status 1, a clean package 0.
func TestDriverExitCodes(t *testing.T) {
	if got := run([]string{"./cmd/lalint/testdata/errcheck/bad/pkg"}); got != 1 {
		t.Errorf("driver on bad fixture: exit %d, want 1", got)
	}
	if got := run([]string{"./cmd/lalint/testdata/errcheck/ok/pkg"}); got != 0 {
		t.Errorf("driver on ok fixture: exit %d, want 0", got)
	}
}

// TestMalformedDirective checks that a reasonless lint:ignore is itself a
// finding from the "lalint" pseudo-analyzer.
func TestMalformedDirective(t *testing.T) {
	p := loadFixture(t, "malformed/pkg")
	diags := RunAnalyzers(p)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + unsuppressed finding):\n%s", len(diags), render(diags))
	}
	if diags[0].Analyzer != "lalint" && diags[1].Analyzer != "lalint" {
		t.Errorf("no lalint malformed-directive finding in:\n%s", render(diags))
	}
}
