package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenCases maps each analyzer to its fixture packages. The directory
// layout places every fixture at an import path ending in a suffix the
// analyzer is scoped to (e.g. .../bad/internal/exec), so the packages are
// linted exactly like the real module packages. Cases marked exclusive
// additionally assert that the deliberately broken fixture is flagged by the
// intended checker and by nothing else.
var goldenCases = []struct {
	analyzer  string
	bad, ok   string // directories relative to testdata/
	exclusive bool
}{
	{"nodeterminism", "nodeterminism/bad/internal/exec", "nodeterminism/ok/internal/exec", false},
	{"lockcheck", "lockcheck/bad/internal/cluster", "lockcheck/ok/internal/cluster", false},
	{"errcheck", "errcheck/bad/pkg", "errcheck/ok/pkg", false},
	{"panicpolicy", "panicpolicy/bad/internal/opt", "panicpolicy/ok/internal/opt", false},
	{"bigcopy", "bigcopy/bad/internal/exec", "bigcopy/ok/internal/exec", false},
	{"chargecheck", "chargecheck/bad/internal/exec", "chargecheck/ok/internal/exec", true},
	{"commitcheck", "commitcheck/bad/internal/exec", "commitcheck/ok/internal/exec", true},
	{"spillkey", "spillkey/bad/internal/exec", "spillkey/ok/internal/exec", true},
	{"pincheck", "pincheck/bad/internal/storage", "pincheck/ok/internal/storage", true},
	{"aliascheck", "aliascheck/bad/internal/exec", "aliascheck/ok/internal/exec", true},
	{"gocheck", "gocheck/bad/internal/linalg", "gocheck/ok/internal/linalg", true},
}

// loadFixture type-checks one testdata package at its natural import path and
// wraps it in a Program so analyzers see cross-package facts.
func loadFixture(t *testing.T, rel string) (*Pkg, *Program) {
	t.Helper()
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", filepath.FromSlash(rel))
	path := loader.ModulePath + "/cmd/lalint/testdata/" + rel
	p, err := loader.LoadDirAs(dir, path)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	return p, NewProgram(loader)
}

// render formats diagnostics with basenames so goldens are location-stable.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		d.Pos.Filename = filepath.Base(d.Pos.Filename)
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.analyzer, func(t *testing.T) {
			p, prog := loadFixture(t, c.bad)
			all := prog.Analyze(p, nil)
			var diags []Diagnostic
			for _, d := range all {
				if d.Analyzer == c.analyzer {
					diags = append(diags, d)
				} else if c.exclusive {
					t.Errorf("bad fixture %s flagged by %s, want only %s: %s", c.bad, d.Analyzer, c.analyzer, d)
				}
			}
			if len(diags) == 0 {
				t.Fatalf("bad fixture %s produced no %s findings", c.bad, c.analyzer)
			}
			got := render(diags)
			goldenPath := filepath.Join("testdata", c.analyzer, "golden.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSuppressed checks every ok fixture is clean under the FULL analyzer
// set: the sanctioned idioms must not trade one finding for another.
func TestSuppressed(t *testing.T) {
	for _, c := range goldenCases {
		t.Run(c.analyzer, func(t *testing.T) {
			p, prog := loadFixture(t, c.ok)
			if diags := prog.Analyze(p, nil); len(diags) != 0 {
				t.Errorf("ok fixture %s produced findings:\n%s", c.ok, render(diags))
			}
		})
	}
}

// TestCheckerFlag checks -checker style filtering: only the selected
// analyzers run.
func TestCheckerFlag(t *testing.T) {
	badCharge := "./cmd/lalint/testdata/chargecheck/bad/internal/exec"
	diags, status := lint(options{checkers: map[string]bool{"gocheck": true}}, []string{badCharge})
	if status != 0 || len(diags) != 0 {
		t.Errorf("filtering to gocheck on a chargecheck fixture: got %d findings, status %d; want clean", len(diags), status)
	}
	diags, status = lint(options{checkers: map[string]bool{"chargecheck": true}}, []string{badCharge})
	if status != 1 || len(diags) == 0 {
		t.Fatalf("filtering to chargecheck on its bad fixture: got %d findings, status %d; want findings, status 1", len(diags), status)
	}
	for _, d := range diags {
		if d.Analyzer != "chargecheck" {
			t.Errorf("filtered run emitted %s finding: %s", d.Analyzer, d)
		}
	}
}

// TestParseCheckers checks the -checker flag's name validation.
func TestParseCheckers(t *testing.T) {
	got, err := parseCheckers("gocheck, spillkey")
	if err != nil || !got["gocheck"] || !got["spillkey"] || len(got) != 2 {
		t.Errorf("parseCheckers(\"gocheck, spillkey\") = %v, %v", got, err)
	}
	if _, err := parseCheckers("nosuchcheck"); err == nil {
		t.Error("parseCheckers accepted an unknown checker name")
	}
}

// TestJSONOutput checks the -json rendering: a valid array with the expected
// fields, and an empty (not null) array for a clean run.
func TestJSONOutput(t *testing.T) {
	diags, status := lint(options{}, []string{"./cmd/lalint/testdata/gocheck/bad/internal/linalg"})
	if status != 1 || len(diags) == 0 {
		t.Fatalf("bad fixture: %d findings, status %d", len(diags), status)
	}
	out, err := renderJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []diagJSON
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(decoded) != len(diags) {
		t.Fatalf("JSON has %d entries, want %d", len(decoded), len(diags))
	}
	d := decoded[0]
	if d.Analyzer != "gocheck" || d.File == "" || d.Line == 0 || d.Message == "" {
		t.Errorf("incomplete JSON entry: %+v", d)
	}
	empty, err := renderJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("empty findings render as %q, want []", empty)
	}
}

// TestRepoClean is the self-hosting regression: the full analyzer suite over
// the whole module must be clean.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, status := lint(options{}, []string{"./..."})
	if status != 0 {
		t.Errorf("lalint ./... is not clean (status %d):\n%s", status, render(diags))
	}
}

// TestDriverExitCodes runs the real driver entry point: findings must make
// the exit status 1, a clean package 0.
func TestDriverExitCodes(t *testing.T) {
	if got := run(options{}, []string{"./cmd/lalint/testdata/errcheck/bad/pkg"}); got != 1 {
		t.Errorf("driver on bad fixture: exit %d, want 1", got)
	}
	if got := run(options{}, []string{"./cmd/lalint/testdata/errcheck/ok/pkg"}); got != 0 {
		t.Errorf("driver on ok fixture: exit %d, want 0", got)
	}
}

// TestMalformedDirective checks that a reasonless lint:ignore is itself a
// finding from the "lalint" pseudo-analyzer.
func TestMalformedDirective(t *testing.T) {
	p, prog := loadFixture(t, "malformed/pkg")
	diags := prog.Analyze(p, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + unsuppressed finding):\n%s", len(diags), render(diags))
	}
	if diags[0].Analyzer != "lalint" && diags[1].Analyzer != "lalint" {
		t.Errorf("no lalint malformed-directive finding in:\n%s", render(diags))
	}
}
