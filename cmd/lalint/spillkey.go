package main

import (
	"go/ast"
	"go/types"
)

// SpillkeyAnalyzer enforces the spill layer's attempt-keying and lifecycle
// contract. Run writers created inside retryable tasks must be opened with
// NewWriterAt and the live attempt number — a constant attempt (or the
// NewWriter shorthand, which hardcodes attempt 0) means a retried task re-draws
// the same write fault forever and the injector's "final attempt is clean"
// guarantee does nothing. Writers must reach Finish or Abort and readers must
// reach Close on every local path (or escape to an owner that does), and a
// writer or reader captured from an enclosing scope must not be touched inside
// a task closure: a retried attempt would resume a half-written run from the
// failed attempt instead of starting a fresh one.
var SpillkeyAnalyzer = &Analyzer{
	Name: "spillkey",
	Doc:  "flags non-attempt-keyed spill writers, unfinished writers/unclosed readers, and spill handles reused across attempts",
	Run:  runSpillkey,
}

func runSpillkey(pass *Pass) {
	p, r := pass.Pkg, pass.R
	// The spill package itself defines the shorthand and tests the codec.
	if pathHasSuffix(p.Path, "internal/spill") {
		return
	}
	for _, f := range p.Files {
		tm := buildTaskMap(p, f)
		checkAttemptKeying(p, r, f)
		checkCrossAttemptReuse(p, r, tm, f)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpillLifecycle(p, r, fd)
			}
		}
	}
}

// checkAttemptKeying flags NewWriter (hardcoded attempt 0) and NewWriterAt
// with a compile-time-constant attempt argument.
func checkAttemptKeying(p *Pkg, r *Reporter, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p, call)
		switch {
		case isMethodOf(callee, "internal/spill", "Manager", "NewWriter"):
			r.Reportf(call.Pos(), "spill.NewWriter hardcodes attempt 0; use NewWriterAt with the task's attempt so retries re-key the write-fault draw")
		case isMethodOf(callee, "internal/spill", "Manager", "NewWriterAt") && len(call.Args) == 2:
			if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil {
				r.Reportf(call.Pos(), "spill.NewWriterAt with constant attempt %s; pass the task's live attempt number so retries re-key the write-fault draw", tv.Value)
			}
		}
		return true
	})
}

// spillHandleType classifies *spill.Writer / *spill.Reader.
func spillHandleType(t types.Type) (string, bool) {
	switch {
	case namedFrom(t, "internal/spill", "Writer"):
		return "writer", true
	case namedFrom(t, "internal/spill", "Reader"):
		return "reader", true
	}
	return "", false
}

// checkCrossAttemptReuse flags a spill writer/reader declared outside a task
// closure but used inside it.
func checkCrossAttemptReuse(p *Pkg, r *Reporter, tm *taskMap, f *ast.File) {
	type key struct {
		obj types.Object
		lit *ast.FuncLit
	}
	reported := map[key]bool{}
	inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		kind, ok := spillHandleType(obj.Type())
		if !ok {
			return true
		}
		info, lit := tm.atLit(stack)
		if info == nil || info.role == roleNone {
			return true
		}
		// A commit belongs to one specific winning attempt; measuring scope
		// against its compute keeps handles created by the compute legal to
		// finish in its own commit.
		scope := ast.Node(lit)
		if info.role == roleCommit && info.compute != nil {
			scope = info.compute
		}
		if declaredWithin(obj, scope) {
			return true
		}
		k := key{obj, lit}
		if !reported[k] {
			reported[k] = true
			r.Reportf(id.Pos(), "spill %s %q is captured from outside the task closure; a retried attempt would reuse the previous attempt's handle — create it inside the task", kind, id.Name)
		}
		return true
	})
}

// checkSpillLifecycle flags, per function declaration, spill writers that
// reach neither Finish nor Abort and readers that never Close. A handle that
// escapes — returned, stored in a field/slice/map, passed to another call —
// transfers the obligation to its new owner and is not flagged.
func checkSpillLifecycle(p *Pkg, r *Reporter, fd *ast.FuncDecl) {
	type handle struct {
		id   *ast.Ident
		kind string
		ok   bool // closed/finished/aborted or escaped
	}
	handles := map[types.Object]*handle{}

	// Collect handles created by this function: w, err := m.NewWriterAt(...),
	// rd, err := run.Reader().
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(p, call)
		var kind string
		switch {
		case isMethodOf(callee, "internal/spill", "Manager", "NewWriter"),
			isMethodOf(callee, "internal/spill", "Manager", "NewWriterAt"):
			kind = "writer"
		case isMethodOf(callee, "internal/spill", "Run", "Reader"):
			kind = "reader"
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(p, id); obj != nil {
				handles[obj] = &handle{id: id, kind: kind}
			}
		}
		return true
	})
	if len(handles) == 0 {
		return
	}

	// Any use that is not a plain method call on the handle is an escape;
	// Finish/Abort/Close method calls discharge the obligation directly.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		h := handles[p.Info.Uses[id]]
		if h == nil || h.ok {
			return true
		}
		use := enclosingUse(fd, id)
		if sel, ok := use.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Finish", "Abort", "Close":
				h.ok = true
			}
			return true
		}
		// Not a method-call receiver: returned, appended, assigned into a
		// structure, passed as an argument — ownership moved.
		h.ok = true
		return true
	})
	for _, h := range handles {
		if !h.ok {
			verb, leak := "Finish or Abort", "the run file leaks until Manager.Close"
			if h.kind == "reader" {
				verb, leak = "Close", "the file handle leaks"
			}
			r.Reportf(h.id.Pos(), "spill %s %q never reaches %s; %s", h.kind, h.id.Name, verb, leak)
		}
	}
}

// enclosingUse returns the innermost expression that consumes the identifier:
// the SelectorExpr if the use is a field/method access, otherwise the node
// itself. Implemented as a positional walk since go/ast has no parent links.
func enclosingUse(fd *ast.FuncDecl, id *ast.Ident) ast.Node {
	var found ast.Node = id
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok && x == id {
			found = sel
			return false
		}
		return true
	})
	return found
}
