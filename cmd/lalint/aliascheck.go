package main

import (
	"go/ast"
)

// AliascheckAnalyzer guards the partition-isolation invariant: a value.Row's
// vector and matrix cells alias their backing arrays, so a row that crosses a
// partition or goroutine boundary un-copied is shared mutable state — one
// partition's in-place kernel write silently corrupts another's input. Rows
// must cross through value.DeepClone or the row codec (Encode/DecodeRow), the
// same path a real networked shuffle would force. The checker flags channel
// sends of row-bearing values and, inside task closures, stores of
// row-bearing values into captured structures under a partition index other
// than the task's own, unless the value visibly came from a cloning or
// decoding call.
var AliascheckAnalyzer = &Analyzer{
	Name: "aliascheck",
	Doc:  "flags value.Row data crossing partition/channel boundaries without DeepClone or the row codec",
	Run:  runAliascheck,
}

// aliasScope: the packages that move rows between partitions or across
// connections. internal/opt is included because adaptive re-planning hands
// executed leaf relations (row-bearing Bound inputs) back through the
// optimizer.
var aliasScope = []string{
	"internal/cluster",
	"internal/exec",
	"internal/serve",
	"internal/storage",
	"internal/opt",
}

func runAliascheck(pass *Pass) {
	p, r := pass.Pkg, pass.R
	if !pathHasSuffix(p.Path, aliasScope...) {
		return
	}
	for _, f := range p.Files {
		tm := buildTaskMap(p, f)
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.SendStmt:
				tv, ok := p.Info.Types[x.Value]
				if !ok || !typeContainsRow(tv.Type) {
					return true
				}
				if sanitizedOrigin(p, f, x.Value) {
					return true
				}
				r.Reportf(x.Pos(), "row-bearing value sent over a channel without DeepClone or the row codec; the receiver aliases the sender's cell arrays")
			case *ast.AssignStmt:
				info, lit := tm.atLit(stack)
				if info == nil || info.role == roleNone {
					return true
				}
				scope := ast.Node(lit)
				if info.role == roleCommit && info.compute != nil {
					scope = info.compute
				}
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					checkCrossPartitionStore(p, r, info, scope, lhs, x.Rhs[i], f)
				}
			}
			return true
		})
	}
}

// checkCrossPartitionStore flags `captured[i] = rows` inside a task when i is
// not the task's own partition parameter and rows carries value.Row data that
// did not pass through a sanitizing call. Stores under the task's own
// partition index are the result-installation idiom — the row stays inside
// its partition, no aliasing is created.
func checkCrossPartitionStore(p *Pkg, r *Reporter, info *taskInfo, scope ast.Node, lhs, rhs ast.Expr, f *ast.File) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	root := rootIdent(idx.X)
	if root == nil {
		return
	}
	obj := identObj(p, root)
	if obj == nil || declaredWithin(obj, scope) {
		return
	}
	tv, ok := p.Info.Types[rhs]
	if !ok || !typeContainsRow(tv.Type) {
		return
	}
	if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok {
		if o := identObj(p, id); o != nil && o == info.part {
			return // own-partition slot: result installation, not a crossing
		}
	}
	if sanitizedOrigin(p, f, rhs) {
		return
	}
	r.Reportf(lhs.Pos(), "row-bearing value stored into captured %q under a non-own-partition index without DeepClone or the row codec; partitions would alias the same cell arrays", root.Name)
}

// sanitizedOrigin reports whether the expression visibly passed through a
// cloning or serializing call: it is such a call directly, or an identifier
// whose (single, lexically preceding) assignment in this file is one.
func sanitizedOrigin(p *Pkg, f *ast.File, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		return isSanitizingCall(p, call)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(p, id)
	if obj == nil {
		return false
	}
	sanitized := false
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() > id.Pos() {
			return true
		}
		for i, lhs := range as.Lhs {
			l, ok := lhs.(*ast.Ident)
			if !ok || identObj(p, l) != obj {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isSanitizingCall(p, call) {
				sanitized = true
			} else {
				sanitized = false // a later rebind from elsewhere taints it again
			}
		}
		return true
	})
	return sanitized
}

// isSanitizingCall recognizes the calls that break cell-array aliasing:
// value.DeepClone and the row codec's decode entry points (a decoded row owns
// freshly allocated cells by construction).
func isSanitizingCall(p *Pkg, call *ast.CallExpr) bool {
	callee := calleeFunc(p, call)
	if callee == nil {
		return false
	}
	switch callee.Name() {
	case "DeepClone", "DecodeRow", "DecodeRows", "Clone":
		return isValuePkgFunc(callee, callee.Name()) ||
			(recvNamed(callee) != nil && callee.Pkg() != nil && pathHasSuffix(callee.Pkg().Path(), "internal/value"))
	}
	return false
}
