// Command lasql runs extended-SQL scripts against a fresh in-process engine:
//
//	lasql script.sql            run a script file
//	echo "SELECT 1+2" | lasql   run statements from stdin
//	lasql -i                    interactive prompt (one statement per line,
//	                            terminated by ';')
//
// The engine supports the paper's VECTOR/MATRIX/LABELED_SCALAR types, the
// linear-algebra built-ins, and EXPLAIN.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relalg/internal/core"
	"relalg/internal/csvio"
)

// assignFlags collects repeatable table=path flags.
type assignFlags []string

func (a *assignFlags) String() string { return strings.Join(*a, ",") }
func (a *assignFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("want table=path, got %q", s)
	}
	*a = append(*a, s)
	return nil
}

func main() {
	interactive := flag.Bool("i", false, "interactive mode")
	nodes := flag.Int("nodes", 10, "simulated cluster nodes")
	perNode := flag.Int("partitions", 2, "partitions per node")
	initScript := flag.String("init", "", "DDL script run before -load (e.g. CREATE TABLE statements)")
	var loads, dumps assignFlags
	flag.Var(&loads, "load", "load CSV (with header) into a table after -init, before the script: table=path (repeatable)")
	flag.Var(&dumps, "dump", "dump a table to CSV after the script: table=path (repeatable)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Cluster.Nodes = *nodes
	cfg.Cluster.PartitionsPerNode = *perNode
	db := core.Open(cfg)

	doLoads := func() {
		for _, spec := range loads {
			table, path, _ := strings.Cut(spec, "=")
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
				os.Exit(1)
			}
			n, err := csvio.Load(db, table, f, true)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: loading %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "loaded %d rows into %s\n", n, table)
		}
	}
	doDumps := func() {
		for _, spec := range dumps {
			table, path, _ := strings.Cut(spec, "=")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
				os.Exit(1)
			}
			err = csvio.DumpTable(db, table, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: dumping %s: %v\n", spec, err)
				os.Exit(1)
			}
		}
	}
	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
			os.Exit(1)
		}
		if _, err := db.RunScript(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "lasql: init: %v\n", err)
			os.Exit(1)
		}
	}
	doLoads()

	if *interactive {
		repl(db)
		doDumps()
		return
	}

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		os.Exit(1)
	}
	results, err := db.RunScript(string(src))
	for _, res := range results {
		printResult(res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		os.Exit(1)
	}
	doDumps()
}

func repl(db *core.Database) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("lasql> ")
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("   ..> ")
			continue
		}
		results, err := db.RunScript(buf.String())
		buf.Reset()
		for _, res := range results {
			printResult(res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
		fmt.Print("lasql> ")
	}
}

func printResult(res *core.Result) {
	names := make([]string, len(res.Schema))
	for i, f := range res.Schema {
		names[i] = f.Name
	}
	fmt.Println(strings.Join(names, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d rows; %s)\n\n", len(res.Rows), res.Stats)
}
