// Command lasql runs extended-SQL scripts against a fresh in-process engine:
//
//	lasql script.sql            run a script file
//	echo "SELECT 1+2" | lasql   run statements from stdin
//	lasql -i                    interactive prompt (one statement per line,
//	                            terminated by ';')
//	lasql -serve :4321          long-lived server: concurrent sessions over a
//	                            length-prefixed TCP protocol
//	lasql -client :4321         run a script (or -i prompt) against a server
//
// The engine supports the paper's VECTOR/MATRIX/LABELED_SCALAR types, the
// linear-algebra built-ins, and EXPLAIN.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"relalg/internal/core"
	"relalg/internal/csvio"
	"relalg/internal/serve"
)

// assignFlags collects repeatable table=path flags.
type assignFlags []string

func (a *assignFlags) String() string { return strings.Join(*a, ",") }
func (a *assignFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return fmt.Errorf("want table=path, got %q", s)
	}
	*a = append(*a, s)
	return nil
}

func main() {
	interactive := flag.Bool("i", false, "interactive mode")
	nodes := flag.Int("nodes", 10, "simulated cluster nodes")
	perNode := flag.Int("partitions", 2, "partitions per node")
	initScript := flag.String("init", "", "DDL script run before -load (e.g. CREATE TABLE statements)")
	serveAddr := flag.String("serve", "", "serve the engine on this address (e.g. :4321) after -init/-load")
	clientAddr := flag.String("client", "", "run against a lasql server at this address instead of in-process")
	maxConc := flag.Int("max-concurrent", 4, "with -serve: statements executing at once; others wait for admission")
	memPool := flag.Int64("mem-pool", 0, "with -serve: shared spill memory pool in bytes (0 inherits config, <0 unlimited)")
	dataDir := flag.String("data", "", "persistent data directory: tables live in paged files and survive restarts (empty: in-memory)")
	poolBytes := flag.Int64("pool-bytes", 0, "with -data: buffer-pool budget in bytes (0: storage default)")
	pageBytes := flag.Int("page-bytes", 0, "with -data: page slot size for a fresh directory (0: storage default; an existing directory's manifest wins)")
	var loads, dumps assignFlags
	flag.Var(&loads, "load", "load CSV (with header) into a table after -init, before the script: table=path (repeatable)")
	flag.Var(&dumps, "dump", "dump a table to CSV after the script: table=path (repeatable)")
	flag.Parse()

	if *clientAddr != "" {
		if *serveAddr != "" || *initScript != "" || len(loads) > 0 || len(dumps) > 0 {
			fmt.Fprintln(os.Stderr, "lasql: -client cannot be combined with -serve/-init/-load/-dump (those run in the server process)")
			os.Exit(1)
		}
		os.Exit(runClient(*clientAddr, *interactive))
	}

	cfg := core.DefaultConfig()
	cfg.Cluster.Nodes = *nodes
	cfg.Cluster.PartitionsPerNode = *perNode
	cfg.DataDir = *dataDir
	cfg.BufferPoolBytes = *poolBytes
	cfg.PageBytes = *pageBytes
	db, err := core.OpenData(cfg)
	if err != nil {
		// Fail fast with the storage layer's diagnosis: unwritable directory,
		// foreign lock, or format/page-size mismatch.
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		os.Exit(1)
	}
	defer func() { _ = db.Close() }()

	doLoads := func() {
		for _, spec := range loads {
			table, path, _ := strings.Cut(spec, "=")
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
				os.Exit(1)
			}
			n, err := csvio.Load(db, table, f, true)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: loading %s: %v\n", spec, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "loaded %d rows into %s\n", n, table)
		}
	}
	doDumps := func() {
		for _, spec := range dumps {
			table, path, _ := strings.Cut(spec, "=")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
				os.Exit(1)
			}
			err = csvio.DumpTable(db, table, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lasql: dumping %s: %v\n", spec, err)
				os.Exit(1)
			}
		}
	}
	if *initScript != "" {
		src, err := os.ReadFile(*initScript)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
			os.Exit(1)
		}
		if _, err := db.RunScript(string(src)); err != nil {
			fmt.Fprintf(os.Stderr, "lasql: init: %v\n", err)
			os.Exit(1)
		}
	}
	doLoads()

	if *serveAddr != "" {
		if err := runServer(db, *serveAddr, *maxConc, *memPool); err != nil {
			fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
			os.Exit(1)
		}
		doDumps()
		return
	}

	if *interactive {
		ok := repl(db)
		doDumps()
		if !ok {
			os.Exit(1)
		}
		return
	}

	var src []byte
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		os.Exit(1)
	}
	results, err := db.RunScript(string(src))
	for _, res := range results {
		printResult(res)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		os.Exit(1)
	}
	doDumps()
}

// runServer serves db on addr until SIGINT/SIGTERM, then shuts down
// gracefully: in-flight statements finish their responses before sessions
// close.
func runServer(db *core.Database, addr string, maxConc int, memPool int64) error {
	srv := serve.New(db, serve.Config{MaxConcurrent: maxConc, MemoryPoolBytes: memPool})
	lisAddr, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lasql: serving on %s (max-concurrent=%d)\n", lisAddr, maxConc)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "lasql: %v, shutting down\n", sig)
		if err := srv.Shutdown(); err != nil {
			return err
		}
		if err := <-done; err != nil {
			return err
		}
	case err := <-done:
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "lasql: served %d queries\n", srv.Stats().QueriesServed)
	return nil
}

// runClient sends a script (file argument, stdin, or interactive prompt) to
// a running server, printing each reply. Returns the process exit code:
// nonzero when any statement fails.
func runClient(addr string, interactive bool) int {
	c, err := serve.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		return 1
	}
	defer func() { _ = c.Close() }()

	doStmt := func(stmt string) bool {
		reply, err := c.Do(stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lasql: transport: %v\n", err)
			return false
		}
		if reply.ErrMsg != "" {
			fmt.Fprintf(os.Stderr, "error: %s\n", reply.ErrMsg)
			return false
		}
		printReply(reply)
		return true
	}

	if interactive {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var buf strings.Builder
		code := 0
		fmt.Print("lasql> ")
		for sc.Scan() {
			line := sc.Text()
			if strings.TrimSpace(line) == `\stats` {
				if !doStmt(`\stats`) {
					code = 1
				}
				fmt.Print("lasql> ")
				continue
			}
			buf.WriteString(line)
			buf.WriteByte('\n')
			if !strings.Contains(line, ";") {
				fmt.Print("   ..> ")
				continue
			}
			for _, stmt := range splitStatements(buf.String()) {
				if !doStmt(stmt) {
					code = 1
				}
			}
			buf.Reset()
			fmt.Print("lasql> ")
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "lasql: reading input: %v\n", err)
			return 1
		}
		return code
	}

	var src []byte
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lasql: %v\n", err)
		return 1
	}
	for _, stmt := range splitStatements(string(src)) {
		if !doStmt(stmt) {
			return 1
		}
	}
	return 0
}

// splitStatements splits a script on semicolons outside single-quoted
// strings. The server parses each statement; the client only needs the
// boundaries.
func splitStatements(src string) []string {
	var out []string
	start, inStr := 0, false
	for i := 0; i < len(src); i++ {
		switch {
		case src[i] == '\'':
			inStr = !inStr
		case src[i] == ';' && !inStr:
			if s := strings.TrimSpace(src[start:i]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(src[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// printReply renders a server reply in the same shape as printResult.
func printReply(r *serve.Reply) {
	if r.Stats != "" && len(r.Schema) == 0 {
		fmt.Println(r.Stats)
		return
	}
	if len(r.Schema) == 0 {
		fmt.Printf("%s\n\n", r.Done)
		return
	}
	names := make([]string, len(r.Schema))
	for i, line := range r.Schema {
		names[i], _, _ = strings.Cut(line, "\t")
	}
	fmt.Println(strings.Join(names, "\t"))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%s; %s)\n\n", r.Done, strings.ReplaceAll(r.Stats, "\n", " "))
}

// repl runs the in-process interactive prompt. It returns false when the
// input stream failed (a read error, as opposed to a clean EOF) so main can
// exit nonzero instead of silently stopping.
func repl(db *core.Database) bool {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("lasql> ")
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("   ..> ")
			continue
		}
		results, err := db.RunScript(buf.String())
		buf.Reset()
		for _, res := range results {
			printResult(res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
		fmt.Print("lasql> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "lasql: reading input: %v\n", err)
		return false
	}
	return true
}

func printResult(res *core.Result) {
	names := make([]string, len(res.Schema))
	for i, f := range res.Schema {
		names[i] = f.Name
	}
	fmt.Println(strings.Join(names, "\t"))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
	}
	fmt.Printf("(%d rows; %s)\n\n", len(res.Rows), res.Stats)
}
