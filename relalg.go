// Package relalg is a parallel relational database engine with native
// linear-algebra support — a from-scratch Go reproduction of "Scalable
// Linear Algebra on a Relational Database System" (Luo, Gao, Gubanov,
// Perez, Jermaine; ICDE 2017).
//
// The engine extends SQL with LABELED_SCALAR, VECTOR[n] and MATRIX[r][c]
// column types, 40+ linear-algebra built-ins with templated type signatures,
// overloaded arithmetic, the conversion aggregates VECTORIZE / ROWMATRIX /
// COLMATRIX, and a cost-based optimizer that understands linear-algebra
// object sizes. Queries run on a simulated shared-nothing cluster.
//
//	db := relalg.Open(relalg.DefaultConfig())
//	db.MustExec(`CREATE TABLE X (i INTEGER, x_i VECTOR[])`)
//	db.MustExec(`CREATE TABLE y (i INTEGER, y_i DOUBLE)`)
//	// ... load rows with db.LoadTable ...
//	res, err := db.Query(`
//	    SELECT matrix_vector_multiply(
//	             matrix_inverse(SUM(outer_product(X.x_i, X.x_i))),
//	             SUM(X.x_i * y_i))
//	    FROM X, y WHERE X.i = y.i`)
//
// This package is a thin facade over the implementation packages under
// internal/; see README.md for the architecture and DESIGN.md for the
// paper-to-code map.
package relalg

import (
	"relalg/internal/cluster"
	"relalg/internal/core"
	"relalg/internal/dml"
	"relalg/internal/linalg"
	"relalg/internal/opt"
	"relalg/internal/value"
)

// Re-exported engine types.
type (
	// Database is one engine instance (see core.Database).
	Database = core.Database
	// Config assembles the engine's tunables.
	Config = core.Config
	// ClusterConfig sizes the simulated shared-nothing cluster.
	ClusterConfig = cluster.Config
	// OptimizerOptions controls the LA-aware cost-based optimizer.
	OptimizerOptions = opt.Options
	// Result is one query's result set plus its timings and cluster stats.
	Result = core.Result
	// Row is a tuple of SQL values.
	Row = value.Row
	// Value is a single SQL value (scalar, vector, or matrix).
	Value = value.Value
	// Vector is a dense float64 vector.
	Vector = linalg.Vector
	// Matrix is a dense row-major float64 matrix.
	Matrix = linalg.Matrix
	// DML is a session of the SystemML-flavoured matrix language that
	// compiles to the engine's extended SQL.
	DML = dml.Session
)

// Open creates an empty database.
func Open(cfg Config) *Database { return core.Open(cfg) }

// DefaultConfig simulates the paper's 10-node cluster with the full
// optimizer enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDML opens a DML session over the database.
func NewDML(db *Database) *DML { return dml.New(db) }

// Value constructors for building LoadTable batches.

// Int returns an INTEGER value.
func Int(i int64) Value { return value.Int(i) }

// Double returns a DOUBLE value.
func Double(d float64) Value { return value.Double(d) }

// String returns a STRING value.
func String(s string) Value { return value.String_(s) }

// Bool returns a BOOLEAN value.
func Bool(b bool) Value { return value.Bool(b) }

// Null returns the NULL value.
func Null() Value { return value.Null() }

// VectorOf returns a VECTOR value with the given entries.
func VectorOf(entries ...float64) Value {
	return value.Vector(linalg.VectorOf(entries...))
}

// MatrixOf returns a MATRIX value from row slices, which must be
// rectangular.
func MatrixOf(rows [][]float64) (Value, error) {
	m, err := linalg.MatrixFromRows(rows)
	if err != nil {
		return Null(), err
	}
	return value.Matrix(m), nil
}

// LabeledScalar returns a LABELED_SCALAR: a DOUBLE carrying an integer
// label for use with VECTORIZE.
func LabeledScalar(d float64, label int64) Value {
	return value.LabeledScalar(d, label)
}
