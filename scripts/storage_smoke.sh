#!/usr/bin/env bash
# storage_smoke.sh exercises persistent storage end-to-end from the CLI
# surface: it starts `lasql -serve -data <dir>`, creates and loads a table
# through a client, snapshots query results, SIGKILLs the server mid-flight,
# reopens the same data directory in a fresh process, and requires the
# reopened tables to reproduce the pre-kill results exactly. A second batch
# run then checks the directory is still writable after recovery.
#
# Usage: scripts/storage_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/lasql" ./cmd/lasql

DATA="$WORK/data"
PORT=$(( (RANDOM % 10000) + 42000 ))
ADDR="127.0.0.1:${PORT}"

cat > "$WORK/load.sql" <<'SQL'
CREATE TABLE pts (g INTEGER, v DOUBLE) PARTITION BY HASH (g);
CREATE TABLE vecs (id INTEGER, x VECTOR[4]);
INSERT INTO pts VALUES (0, 1.5), (1, 2.5), (0, 3.0), (2, 4.25), (1, 0.75);
INSERT INTO vecs VALUES (1, zeros_vector(4) + 2), (2, zeros_vector(4));
SQL

cat > "$WORK/query.sql" <<'SQL'
SELECT g, SUM(v) AS total FROM pts GROUP BY g ORDER BY g;
SELECT id, inner_product(x, x) AS nrm FROM vecs ORDER BY id;
SELECT COUNT(*) FROM pts;
SQL

# Per-query shuffle stats vary with what else ran in the process; strip the
# stats suffix and compare the relations (schema + rows + row count).
rows_only() { sed -E 's/^\(([0-9]+ rows);.*\)$/(\1)/' "$1"; }

FAIL=0

"$WORK/lasql" -serve "$ADDR" -data "$DATA" -pool-bytes $((256 * 1024)) \
  2> "$WORK/server.log" &
SERVER_PID=$!
disown "$SERVER_PID" # keep bash from reporting the deliberate SIGKILL

for _ in $(seq 1 50); do
  if "$WORK/lasql" -client "$ADDR" </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

if ! "$WORK/lasql" -client "$ADDR" "$WORK/load.sql" > /dev/null 2> "$WORK/load.err"; then
  echo "storage_smoke: load failed:" >&2
  cat "$WORK/load.err" >&2
  FAIL=1
fi
if ! "$WORK/lasql" -client "$ADDR" "$WORK/query.sql" > "$WORK/before.out" 2> "$WORK/before.err"; then
  echo "storage_smoke: pre-kill query failed:" >&2
  cat "$WORK/before.err" >&2
  FAIL=1
fi

# Crash without any shutdown path: committed state must survive on disk and
# the (kernel-released) directory lock must not wedge the next open.
kill -9 "$SERVER_PID" 2>/dev/null || true
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done

if ! "$WORK/lasql" -data "$DATA" "$WORK/query.sql" > "$WORK/after.out" 2> "$WORK/after.err"; then
  echo "storage_smoke: reopen after SIGKILL failed:" >&2
  cat "$WORK/after.err" >&2
  FAIL=1
fi
rows_only "$WORK/before.out" > "$WORK/before.rows"
rows_only "$WORK/after.out" > "$WORK/after.rows"
if ! cmp -s "$WORK/before.rows" "$WORK/after.rows"; then
  echo "storage_smoke: reopened results differ from pre-kill results" >&2
  diff "$WORK/before.rows" "$WORK/after.rows" >&2 || true
  FAIL=1
fi

# The recovered directory must keep accepting writes.
cat > "$WORK/append.sql" <<'SQL'
INSERT INTO pts VALUES (3, 9.5);
SELECT COUNT(*) FROM pts;
SQL
if ! "$WORK/lasql" -data "$DATA" "$WORK/append.sql" > "$WORK/append.out" 2> "$WORK/append.err"; then
  echo "storage_smoke: post-recovery insert failed:" >&2
  cat "$WORK/append.err" >&2
  FAIL=1
elif ! grep -q "^6$" "$WORK/append.out"; then
  echo "storage_smoke: post-recovery COUNT(*) is not 6:" >&2
  cat "$WORK/append.out" >&2
  FAIL=1
fi

if [[ "$FAIL" != 0 ]]; then
  echo "storage_smoke: FAILED" >&2
  exit 1
fi
echo "storage_smoke: ok (SIGKILL recovery reproduced pre-kill results; directory writable after restart)"
