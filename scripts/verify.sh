#!/usr/bin/env bash
# verify.sh is the repo's full verification gate: build, vet, the
# project-specific lalint analyzers, the test suite, and the race detector
# over the concurrent packages (the simulated cluster, the executor, the
# BLAS-like kernels, and the benchmark harness that drives them).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== lalint =="
go run ./cmd/lalint ./...

echo "== go test =="
go test -short ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/cluster/ ./internal/exec/ ./internal/linalg/ ./internal/bench/ ./internal/spill/ ./internal/fault/

echo "== kernel benchmark smoke =="
go run ./cmd/labench -kernels -smoke -out ""

echo "== out-of-core spill sweep smoke =="
go run ./cmd/labench -spill -smoke

echo "== fault-injection sweep smoke =="
go run ./cmd/labench -faults -smoke

echo "verify: all gates passed"
