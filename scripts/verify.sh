#!/usr/bin/env bash
# verify.sh is the repo's full verification gate: build, vet, the
# project-specific lalint analysis suite, the test suite, the race detector
# over the concurrent packages (the simulated cluster, the executor, the
# BLAS-like kernels, the server, and the benchmark harness that drives them),
# the batch-executor equivalence tests under the race detector, the benchmark
# smokes (including the row-vs-batch identity sweep, the buffer-pool storage
# sweep, and the optimizer rewrite/adaptive-replan identity sweep), the
# end-to-end server smoke, and the SIGKILL restart-recovery smoke over a
# persistent data directory.
#
# Every gate runs even if an earlier one fails (except that a failed build
# skips the gates that cannot run without a building tree); the run ends with
# a summary table and a non-zero exit if any gate failed.
#
# Usage: scripts/verify.sh
set -uo pipefail
cd "$(dirname "$0")/.."

declare -a GATE_NAMES=()
declare -a GATE_RESULTS=()
FAILED=0
BUILD_OK=1

# gate <name> <command...> runs one gate, records pass/FAIL, and keeps going.
gate() {
  local name="$1"
  shift
  echo "== ${name} =="
  if "$@"; then
    GATE_NAMES+=("$name")
    GATE_RESULTS+=(pass)
  else
    GATE_NAMES+=("$name")
    GATE_RESULTS+=(FAIL)
    FAILED=1
  fi
}

# skip <name> <reason> records a gate that could not run.
skip() {
  echo "== ${1} == (skipped: ${2})"
  GATE_NAMES+=("$1")
  GATE_RESULTS+=("skip (${2})")
  FAILED=1
}

gate "go build" go build ./...
[[ ${GATE_RESULTS[-1]} == pass ]] || BUILD_OK=0

if [[ $BUILD_OK == 1 ]]; then
  gate "go vet" go vet ./...
  gate "lalint" go run ./cmd/lalint ./...
  gate "go test" go test -short ./...
  gate "go test -race" go test -race ./internal/cluster/ ./internal/exec/ ./internal/linalg/ ./internal/bench/ ./internal/spill/ ./internal/fault/ ./internal/serve/ ./internal/core/
  gate "batch race" go test -race -run Batch -count=1 ./internal/core/ ./internal/exec/ ./internal/value/
  gate "storage race" go test -race -count=1 ./internal/storage/ ./internal/blockio/
  gate "kernel smoke" go run ./cmd/labench -kernels -smoke -out ""
  gate "spill smoke" go run ./cmd/labench -spill -smoke
  gate "faults smoke" go run ./cmd/labench -faults -smoke
  gate "batch smoke" go run ./cmd/labench -batch -smoke -out ""
  gate "storage smoke" go run ./cmd/labench -storage -smoke -out ""
  gate "opt smoke" go run ./cmd/labench -opt -smoke -out ""
  gate "serve smoke" bash scripts/serve_smoke.sh
  gate "restart smoke" bash scripts/storage_smoke.sh
else
  for g in "go vet" "lalint" "go test" "go test -race" "batch race" "storage race" "kernel smoke" "spill smoke" "faults smoke" "batch smoke" "storage smoke" "opt smoke" "serve smoke" "restart smoke"; do
    skip "$g" "build failed"
  done
fi

echo
echo "== verify summary =="
for i in "${!GATE_NAMES[@]}"; do
  printf '  %-14s %s\n' "${GATE_NAMES[$i]}" "${GATE_RESULTS[$i]}"
done
if [[ $FAILED == 1 ]]; then
  echo "verify: FAILED"
  exit 1
fi
echo "verify: all gates passed"
