#!/usr/bin/env bash
# serve_smoke.sh exercises the lasql server end-to-end from the CLI surface:
# it starts `lasql -serve` on a local port, runs several concurrent clients
# with the same read-only script plus one per-client table workload, checks
# every client exits zero with identical output for the shared script, and
# verifies the server shuts down cleanly on SIGINT.
#
# Usage: scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/lasql" ./cmd/lasql

PORT=$(( (RANDOM % 10000) + 42000 ))
ADDR="127.0.0.1:${PORT}"

cat > "$WORK/init.sql" <<'SQL'
CREATE TABLE pts (g INTEGER, v DOUBLE);
INSERT INTO pts VALUES (0, 1.5), (1, 2.5), (0, 3.0), (2, 4.25), (1, 0.75);
SQL

cat > "$WORK/shared.sql" <<'SQL'
SELECT g, SUM(v) AS total FROM pts GROUP BY g ORDER BY g;
SELECT COUNT(*) FROM pts;
SQL

"$WORK/lasql" -serve "$ADDR" -init "$WORK/init.sql" -max-concurrent 3 \
  2> "$WORK/server.log" &
SERVER_PID=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  if "$WORK/lasql" -client "$ADDR" </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

N=6
FAIL=0
CLIENT_PIDS=()
for i in $(seq 1 "$N"); do
  {
    cat > "$WORK/cli$i.sql" <<SQL
CREATE TABLE smoke$i (id INTEGER, val DOUBLE);
INSERT INTO smoke$i VALUES (1, $i.5), (2, $i);
SELECT id, val FROM smoke$i ORDER BY id;
DROP TABLE smoke$i;
SQL
    "$WORK/lasql" -client "$ADDR" "$WORK/cli$i.sql" > "$WORK/own$i.out" 2> "$WORK/own$i.err" &&
    "$WORK/lasql" -client "$ADDR" "$WORK/shared.sql" > "$WORK/shared$i.out" 2> "$WORK/shared$i.err"
    echo $? > "$WORK/exit$i"
  } &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || true
done

for i in $(seq 1 "$N"); do
  if [[ "$(cat "$WORK/exit$i" 2>/dev/null)" != 0 ]]; then
    echo "serve_smoke: client $i failed:" >&2
    cat "$WORK/own$i.err" "$WORK/shared$i.err" >&2 || true
    FAIL=1
  fi
done

# Every client must see identical results for the shared script. The
# per-query shuffle counters are deltas of cluster-wide totals, so under
# concurrency they attribute work to whichever query was in flight — strip
# the stats suffix and compare the relations (schema + rows + row count).
for i in $(seq 1 "$N"); do
  sed -E 's/^\(([0-9]+ rows);.*\)$/(\1)/' "$WORK/shared$i.out" > "$WORK/shared$i.rows"
done
for i in $(seq 2 "$N"); do
  if ! cmp -s "$WORK/shared1.rows" "$WORK/shared$i.rows"; then
    echo "serve_smoke: shared-script results differ between client 1 and client $i" >&2
    diff "$WORK/shared1.rows" "$WORK/shared$i.rows" >&2 || true
    FAIL=1
  fi
done

# A statement error must exit nonzero without killing the server.
if echo "SELECT * FROM no_such_table;" | "$WORK/lasql" -client "$ADDR" >/dev/null 2>&1; then
  echo "serve_smoke: bad statement did not fail the client" >&2
  FAIL=1
fi
if ! echo "SELECT COUNT(*) FROM pts;" | "$WORK/lasql" -client "$ADDR" >/dev/null 2>&1; then
  echo "serve_smoke: server unusable after a statement error" >&2
  FAIL=1
fi

# Graceful shutdown on SIGINT.
kill -INT "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "serve_smoke: server did not exit after SIGINT" >&2
  kill -9 "$SERVER_PID" || true
  FAIL=1
elif ! grep -q "shutting down" "$WORK/server.log"; then
  echo "serve_smoke: no graceful-shutdown message in server log:" >&2
  cat "$WORK/server.log" >&2
  FAIL=1
fi

if [[ "$FAIL" != 0 ]]; then
  echo "serve_smoke: FAILED" >&2
  exit 1
fi
echo "serve_smoke: ok ($N concurrent clients, identical shared results, clean shutdown)"
