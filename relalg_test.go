package relalg

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API surface: open, DDL, load,
// query with the paper's extensions, DML session.
func TestFacadeEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cluster.Nodes = 2
	cfg.Cluster.PartitionsPerNode = 2
	db := Open(cfg)

	db.MustExec(`CREATE TABLE x (i INTEGER, x_i VECTOR[2])`)
	db.MustExec(`CREATE TABLE y (i INTEGER, y_i DOUBLE)`)
	pts := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	var xr, yr []Row
	for i, p := range pts {
		xr = append(xr, Row{Int(int64(i)), VectorOf(p...)})
		yr = append(yr, Row{Int(int64(i)), Double(3*p[0] - 2*p[1])})
	}
	if err := db.LoadTable("x", xr); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("y", yr); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT matrix_vector_multiply(
			matrix_inverse(SUM(outer_product(x.x_i, x.x_i))),
			SUM(x.x_i * y_i))
		FROM x, y WHERE x.i = y.i`)
	if err != nil {
		t.Fatal(err)
	}
	beta := res.Rows[0][0].Vec
	if math.Abs(beta.At(0)-3) > 1e-9 || math.Abs(beta.At(1)+2) > 1e-9 {
		t.Fatalf("beta = %v", beta)
	}

	// Values round-trip through the facade constructors.
	m, err := MatrixOf([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mat.At(1, 0) != 3 {
		t.Fatalf("matrix %v", m)
	}
	if _, err := MatrixOf([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	ls := LabeledScalar(2.5, 7)
	if ls.D != 2.5 || ls.Label != 7 {
		t.Fatalf("labeled scalar %v", ls)
	}
	if !Null().IsNull() || Bool(true).B != true || String("s").S != "s" {
		t.Fatal("scalar constructors broken")
	}

	// DML over the same database.
	s := NewDML(db)
	if err := s.BindMatrix("m", pts); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("g = t(m) %*% m"); err != nil {
		t.Fatal(err)
	}
	g, err := s.Matrix("g")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 2 || g.Cols != 2 || g.At(0, 0) != 6 {
		t.Fatalf("gram %v", g)
	}
}
